// Simulated home Wi-Fi network.
//
// Point-to-point links between devices with propagation latency,
// serialization bandwidth and optional Gaussian jitter. Per-link FIFO:
// a message starts serializing when the link's transmit queue frees
// up, so big frames back-to-back queue behind each other exactly like
// packets on a shared medium. Intra-device "loopback" delivery costs a
// fixed small IPC delay.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/simulator.hpp"

namespace vp::sim {

struct LinkSpec {
  /// One-way propagation latency.
  Duration latency = Duration::Millis(2.0);
  /// Serialization bandwidth in bits per second.
  double bandwidth_bps = 80e6;  // typical effective home Wi-Fi
  /// Gaussian jitter stddev added to latency (truncated at 0).
  Duration jitter = Duration::Millis(0.4);
  /// Packet loss probability per message (messages are redelivered by
  /// the transport after a retransmit timeout, modeled as +RTT).
  double loss = 0.0;
  /// Probability a delivered message arrives twice (duplicate ACK /
  /// retransmit race). The duplicate lands shortly after the original.
  double duplicate = 0.0;
  /// Probability a message is held back and delivered out of order,
  /// `reorder_delay` after its natural arrival time.
  double reorder = 0.0;
  Duration reorder_delay = Duration::Millis(8.0);
  /// Probability the payload arrives bit-flipped (caught by the
  /// message checksum at the endpoint and dropped there).
  double corrupt = 0.0;
};

struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t retransmits = 0;
  /// Messages dropped because the sender or receiver device was down
  /// (at send time or — for the receiver — at delivery time).
  uint64_t device_drops = 0;
  /// Messages dropped because sender and receiver were in different
  /// partition groups (at send or delivery time).
  uint64_t partition_drops = 0;
  /// Extra copies delivered by the duplication knob.
  uint64_t duplicates_delivered = 0;
  /// Messages delivered late (out of order) by the reorder knob.
  uint64_t reorders = 0;
  /// Messages delivered with a corrupted payload.
  uint64_t corruptions = 0;
};

class Network {
 public:
  Network(Simulator* sim, uint64_t seed);

  /// Default link used for device pairs without an explicit entry.
  void set_default_link(LinkSpec spec) { default_link_ = spec; }

  /// Configure the (directed) link a → b. Call twice for symmetry or
  /// use SetSymmetricLink.
  void SetLink(const std::string& a, const std::string& b, LinkSpec spec);
  void SetSymmetricLink(const std::string& a, const std::string& b,
                        LinkSpec spec);

  /// Current spec of the (directed) link from → to (the default link
  /// when no explicit entry exists). Fault injection reads this to
  /// restore a degraded link exactly.
  const LinkSpec& link(const std::string& from, const std::string& to) const {
    return SpecFor(from, to);
  }

  /// IPC delay for same-device delivery.
  void set_loopback_delay(Duration d) { loopback_delay_ = d; }
  Duration loopback_delay() const { return loopback_delay_; }

  /// Liveness oracle: returns whether the named device is up. When set
  /// (the Cluster wires it to Device::up()), messages from or to a down
  /// device are silently dropped — a dead radio neither transmits nor
  /// receives. Without a check every device counts as up.
  using LivenessCheck = std::function<bool(const std::string&)>;
  void set_liveness_check(LivenessCheck check) {
    liveness_check_ = std::move(check);
  }

  /// Deliver `bytes` from device `from` to device `to`; `on_delivery`
  /// fires at the receiver when the last byte arrives. Returns the
  /// delivery time. Corrupted copies are silently dropped at this
  /// layer; duplicates fire `on_delivery` more than once.
  TimePoint Send(const std::string& from, const std::string& to,
                 size_t bytes, Task on_delivery);

  /// Per-delivery fault annotations, for endpoints that model their
  /// own integrity/dedup layer (the fabric).
  struct Delivery {
    bool corrupted = false;  // payload failed its checksum
    bool duplicate = false;  // extra copy minted by the network
  };
  using DeliveryTask = std::function<void(const Delivery&)>;

  /// Like Send, but hands fault annotations to the receiver instead of
  /// filtering corrupted copies. Every arriving copy (original,
  /// duplicate, corrupted) invokes the task.
  TimePoint SendTagged(const std::string& from, const std::string& to,
                       size_t bytes, DeliveryTask on_delivery);

  /// At-least-once delivery: retries with a fixed timeout until one
  /// copy arrives uncorrupted at a live, reachable receiver, give or
  /// take a bounded number of attempts. Control-plane transfers
  /// (checkpoint restore shipping) use this to survive transient
  /// partitions; the receiver must tolerate duplicates.
  void SendReliable(const std::string& from, const std::string& to,
                    size_t bytes, Task on_delivery);

  /// Split the cluster into isolated groups: messages between devices
  /// in different groups are dropped (counted as partition_drops).
  /// Devices not named in any group form one implicit extra group.
  /// Deterministic — no randomness involved.
  void Partition(const std::vector<std::vector<std::string>>& groups);
  /// Remove the partition; all links carry traffic again.
  void Heal();
  bool partitioned() const { return !partition_group_.empty(); }
  /// True when a message from → to would pass the partition filter.
  bool Reachable(const std::string& from, const std::string& to) const;

  /// Predicted one-way delay for a message of `bytes` on an idle link
  /// (no queueing, no jitter) — used by placement heuristics.
  Duration EstimateDelay(const std::string& from, const std::string& to,
                         size_t bytes) const;

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

 private:
  struct LinkState {
    LinkSpec spec;
    TimePoint tx_free;  // when the transmitter finishes current sends
  };

  const LinkSpec& SpecFor(const std::string& from,
                          const std::string& to) const;
  LinkState& StateFor(const std::string& from, const std::string& to);
  bool DeviceUp(const std::string& name) const {
    return !liveness_check_ || liveness_check_(name);
  }

  Simulator* sim_;
  Rng rng_;
  LivenessCheck liveness_check_;
  LinkSpec default_link_;
  Duration loopback_delay_ = Duration::Micros(150);
  std::map<std::pair<std::string, std::string>, LinkState> links_;
  /// device → partition group id; empty map = no partition. Devices
  /// absent from the map belong to implicit group -1.
  std::map<std::string, int> partition_group_;
  NetworkStats stats_;
};

}  // namespace vp::sim
