// Chaos scheduling: seeded, deterministic fault timelines for soak
// tests. A ChaosSchedule draws a sequence of non-overlapping fault
// episodes — network partitions, device power losses, replica crashes
// and wedges, link degradations (loss + duplication + reordering +
// corruption) — from one Rng and arms them all on a FaultInjector up
// front. The same seed always produces the same timeline, so a chaos
// soak that trips an invariant is replayable bit-for-bit.
//
// Every episode heals itself, and nothing is scheduled inside the
// final `quiet_tail` of the horizon: by the end of a run the cluster
// has had time to converge, which is what the InvariantChecker's
// convergence pass asserts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/fault_injector.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace vp::sim {

struct ChaosOptions {
  /// Total run length the schedule covers, from Arm() time.
  Duration horizon = Duration::Seconds(60);
  /// No episode starts (or is still active) inside the last
  /// `quiet_tail` of the horizon — convergence headroom.
  Duration quiet_tail = Duration::Seconds(10);
  /// Idle gap between consecutive episodes, drawn uniformly.
  Duration min_gap = Duration::Millis(600);
  Duration max_gap = Duration::Seconds(3);
  /// Episode length, drawn uniformly.
  Duration min_duration = Duration::Millis(400);
  Duration max_duration = Duration::Seconds(2);
  /// Relative weights of each episode kind. A kind with no eligible
  /// target (e.g. partitions on a 1-device cluster) drops out.
  double partition_weight = 3.0;
  double device_crash_weight = 2.0;
  double replica_crash_weight = 2.0;
  double wedge_weight = 1.0;
  double link_degrade_weight = 2.0;
  /// Devices never crashed and always kept on the majority side of a
  /// partition (the controller must stay able to coordinate, or every
  /// episode is just "no recovery happens").
  std::vector<std::string> protected_devices;
  /// Link spec applied during a link-degrade episode: lossy, jittery
  /// and adversarial (duplicates, reorders, corrupts).
  LinkSpec degraded{.latency = Duration::Millis(40),
                    .bandwidth_bps = 20e6,
                    .jitter = Duration::Millis(15),
                    .loss = 0.10,
                    .duplicate = 0.08,
                    .reorder = 0.08,
                    .corrupt = 0.05};
};

struct ChaosEpisode {
  enum class Kind {
    kPartition,
    kDeviceCrash,
    kReplicaCrash,
    kWedge,
    kLinkDegrade,
  };
  Kind kind;
  TimePoint at;
  Duration duration;
  /// Human-readable target ("phone|tv vs desktop", "nuc", …).
  std::string detail;
};

const char* ChaosEpisodeKindName(ChaosEpisode::Kind kind);

class ChaosSchedule {
 public:
  /// Targets are taken from the injector's registered devices and
  /// replicas, so register everything before calling Arm().
  ChaosSchedule(Simulator* sim, FaultInjector* injector, uint64_t seed,
                ChaosOptions options = {});

  /// Draw the whole timeline and schedule every episode (and its heal)
  /// on the injector. Call once.
  Status Arm();

  const std::vector<ChaosEpisode>& episodes() const { return episodes_; }
  const ChaosOptions& options() const { return options_; }

  /// One line per episode, for logging a failing seed's timeline.
  std::string Describe() const;

 private:
  Duration DrawBetween(Duration lo, Duration hi);
  void ArmEpisode(const ChaosEpisode& episode,
                  const std::vector<std::string>& groups_a,
                  const std::vector<std::string>& groups_b);

  Simulator* sim_;
  FaultInjector* injector_;
  Rng rng_;
  ChaosOptions options_;
  bool armed_ = false;
  std::vector<ChaosEpisode> episodes_;
};

}  // namespace vp::sim
