#include "sim/fiber.hpp"

#include <cassert>
#include <utility>
#include <vector>

namespace vp::sim {

namespace {

// One stack per concurrently-live fiber. Blocked handlers dominate the
// count and each block is bounded by the service-call timeout, so the
// pool stays small. 256 KiB comfortably fits a vpscript dispatch loop
// plus codec/JSON recursion.
constexpr size_t kStackSize = 256 * 1024;

Fiber* g_current = nullptr;

std::vector<std::unique_ptr<char[]>>& StackPool() {
  static std::vector<std::unique_ptr<char[]>> pool;
  return pool;
}

std::unique_ptr<char[]> AcquireStack() {
  auto& pool = StackPool();
  if (!pool.empty()) {
    std::unique_ptr<char[]> stack = std::move(pool.back());
    pool.pop_back();
    return stack;
  }
  return std::make_unique<char[]>(kStackSize);
}

}  // namespace

Fiber::Fiber(Fn fn) : fn_(std::move(fn)), stack_(AcquireStack()) {}

Fiber::~Fiber() {
  assert(finished_ && "destroying a suspended fiber leaks its stack frames");
  StackPool().push_back(std::move(stack_));
}

Fiber* Fiber::Spawn(Fn fn) {
  Fiber* fiber = new Fiber(std::move(fn));
  getcontext(&fiber->ctx_);
  fiber->ctx_.uc_stack.ss_sp = fiber->stack_.get();
  fiber->ctx_.uc_stack.ss_size = kStackSize;
  fiber->ctx_.uc_link = &fiber->link_;
  makecontext(&fiber->ctx_, &Fiber::Trampoline, 0);
  fiber->Enter();
  return fiber;
}

Fiber* Fiber::Current() { return g_current; }

void Fiber::Trampoline() {
  Fiber* self = g_current;
  self->fn_();
  self->fn_ = nullptr;  // release captures before the owner deletes us
  self->finished_ = true;
  // Returning lands on uc_link == link_, i.e. back inside Enter().
}

void Fiber::Enter() {
  prev_current_ = g_current;
  g_current = this;
  swapcontext(&link_, &ctx_);
  g_current = prev_current_;
}

void Fiber::Suspend() {
  Fiber* self = g_current;
  assert(self != nullptr && "Suspend() outside a fiber");
  swapcontext(&self->ctx_, &self->link_);
}

void Fiber::Resume() {
  assert(!finished_ && "resuming a finished fiber");
  Enter();
}

}  // namespace vp::sim
