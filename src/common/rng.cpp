#include "common/rng.hpp"

#include <cmath>

namespace vp {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Avoid the all-zero state, which is a fixed point of xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random bits into [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextU64() % span);
}

double Rng::NextRange(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace vp
