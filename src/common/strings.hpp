// Small string utilities shared across subsystems.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace vp {

/// Split on a delimiter character. Empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char delim);

/// Trim ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Join pieces with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Lower-case ASCII copy.
std::string ToLower(std::string_view s);

}  // namespace vp
