// Error handling vocabulary for VideoPipe.
//
// The library reports recoverable failures through `Result<T>` /
// `Status` values rather than exceptions, so that the discrete-event
// simulator can keep running after an individual module or service
// fails (fault injection relies on this).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace vp {

/// Coarse classification of failures. Mirrors the categories the
/// runtime needs to react to differently (retry, drop frame, abort).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kUnavailable,      // transient: endpoint not reachable, replica busy
  kResourceExhausted,
  kTimeout,
  kDeadlineExceeded,  // request shed: its frame deadline cannot be met
  kInternal,
  kUnimplemented,
  kParseError,       // config / script / message decoding problems
  kScriptError,      // runtime error raised inside a vpscript module
};

/// Human-readable name of a status code (stable, for logs and tests).
const char* StatusCodeName(StatusCode code);

/// Inverse of StatusCodeName — used to reconstruct a remote error's
/// code from a wire reply (unknown names map to kInternal). Keeping
/// codes faithful across the wire matters: only kUnavailable/kTimeout
/// are retried by the fault-tolerant call path.
StatusCode StatusCodeFromName(const std::string& name);

/// An error: a code plus a context message.
class Error {
 public:
  Error(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "NOT_FOUND: no module named 'pose'"
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Status: success or an Error. Use for functions with no payload.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : error_(std::in_place, code, std::move(message)) {}
  explicit Status(Error error) : error_(std::move(error)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  StatusCode code() const {
    return error_ ? error_->code() : StatusCode::kOk;
  }
  const std::string& message() const {
    static const std::string kEmpty;
    return error_ ? error_->message() : kEmpty;
  }
  std::string ToString() const {
    return error_ ? error_->ToString() : "OK";
  }
  const Error& error() const {
    assert(error_.has_value());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

/// Result<T>: either a value or an Error. A lightweight `expected`.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  Result(Error error) : data_(std::in_place_index<1>, std::move(error)) {}
  Result(StatusCode code, std::string message)
      : data_(std::in_place_index<1>, Error(code, std::move(message))) {}

  bool ok() const { return data_.index() == 0; }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<0>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<0>(data_);
  }
  T&& take() && {
    assert(ok());
    return std::get<0>(std::move(data_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    assert(!ok());
    return std::get<1>(data_);
  }
  StatusCode code() const {
    return ok() ? StatusCode::kOk : error().code();
  }
  Status status() const {
    return ok() ? Status::Ok() : Status(error());
  }
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Convenience constructors, e.g. `return NotFound("no such device");`
inline Error InvalidArgument(std::string m) {
  return Error(StatusCode::kInvalidArgument, std::move(m));
}
inline Error NotFound(std::string m) {
  return Error(StatusCode::kNotFound, std::move(m));
}
inline Error AlreadyExists(std::string m) {
  return Error(StatusCode::kAlreadyExists, std::move(m));
}
inline Error FailedPrecondition(std::string m) {
  return Error(StatusCode::kFailedPrecondition, std::move(m));
}
inline Error Unavailable(std::string m) {
  return Error(StatusCode::kUnavailable, std::move(m));
}
inline Error ResourceExhausted(std::string m) {
  return Error(StatusCode::kResourceExhausted, std::move(m));
}
inline Error Timeout(std::string m) {
  return Error(StatusCode::kTimeout, std::move(m));
}
inline Error DeadlineExceeded(std::string m) {
  return Error(StatusCode::kDeadlineExceeded, std::move(m));
}
inline Error Internal(std::string m) {
  return Error(StatusCode::kInternal, std::move(m));
}
inline Error Unimplemented(std::string m) {
  return Error(StatusCode::kUnimplemented, std::move(m));
}
inline Error ParseError(std::string m) {
  return Error(StatusCode::kParseError, std::move(m));
}
inline Error ScriptError(std::string m) {
  return Error(StatusCode::kScriptError, std::move(m));
}

}  // namespace vp

/// Propagate an error from an expression producing a Result<T>.
#define VP_CONCAT_INNER_(a, b) a##b
#define VP_CONCAT_(a, b) VP_CONCAT_INNER_(a, b)
#define VP_ASSIGN_OR_RETURN_IMPL_(decl, expr, tmp) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.error();                            \
  }                                                \
  decl = std::move(tmp).take()
#define VP_ASSIGN_OR_RETURN(decl, expr) \
  VP_ASSIGN_OR_RETURN_IMPL_(decl, expr, VP_CONCAT_(vp_result_, __LINE__))

/// Propagate a non-OK Status.
#define VP_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::vp::Status vp_status_ = (expr);             \
    if (!vp_status_.ok()) return vp_status_;      \
  } while (false)

/// Propagate a non-OK Status out of a function returning Result<T>.
#define VP_RETURN_IF_ERROR_R(expr)                    \
  do {                                                \
    ::vp::Status vp_status_ = (expr);                 \
    if (!vp_status_.ok()) return vp_status_.error();  \
  } while (false)
