// Minimal structured logging.
//
// The simulator is single-threaded by design, but examples may log from
// helper threads, so the sink is guarded by a mutex. Log lines carry an
// optional virtual timestamp supplied by the caller (the DES clock),
// not wall time, so transcripts are deterministic.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace vp {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* LogLevelName(LogLevel level);

/// Process-wide logger configuration.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& Instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Replace the output sink (default: stderr). Used by tests to
  /// capture output.
  void set_sink(Sink sink);

  void Write(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

/// Stream-style log statement builder.
class LogLine {
 public:
  LogLine(LogLevel level, const char* component) : level_(level) {
    stream_ << "[" << component << "] ";
  }
  ~LogLine() { Logger::Instance().Write(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace vp

#define VP_LOG(level, component)                         \
  if (!::vp::Logger::Instance().enabled(level)) {        \
  } else                                                 \
    ::vp::LogLine(level, component)

#define VP_TRACE(component) VP_LOG(::vp::LogLevel::kTrace, component)
#define VP_DEBUG(component) VP_LOG(::vp::LogLevel::kDebug, component)
#define VP_INFO(component) VP_LOG(::vp::LogLevel::kInfo, component)
#define VP_WARN(component) VP_LOG(::vp::LogLevel::kWarn, component)
#define VP_ERROR(component) VP_LOG(::vp::LogLevel::kError, component)
