// Byte buffers and a small binary codec.
//
// Used for encoded frames and for sizing messages on the simulated
// network. The codec is little-endian, length-prefixed, and is
// deliberately simple — it only needs to round-trip our own types.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace vp {

using Bytes = std::vector<uint8_t>;

/// Append-only binary writer.
class ByteWriter {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(v); }
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteF64(double v);
  /// Length-prefixed (u32) string.
  void WriteString(std::string_view s);
  /// Length-prefixed (u32) blob.
  void WriteBytes(std::span<const uint8_t> data);
  /// Raw bytes, no length prefix.
  void WriteRaw(std::span<const uint8_t> data);

  size_t size() const { return buf_.size(); }
  const Bytes& data() const { return buf_; }
  Bytes Take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Sequential binary reader with bounds checking.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadF64();
  Result<std::string> ReadString();
  Result<Bytes> ReadBytes();

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  bool Need(size_t n) const { return pos_ + n <= data_.size(); }
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

/// Hex dump of up to `max_bytes` (diagnostics).
std::string HexDump(std::span<const uint8_t> data, size_t max_bytes = 32);

/// FNV-1a hash — used for content checksums in tests.
uint64_t Fnv1a(std::span<const uint8_t> data);

}  // namespace vp
