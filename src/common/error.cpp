#include "common/error.hpp"

namespace vp {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kScriptError: return "SCRIPT_ERROR";
  }
  return "UNKNOWN";
}

StatusCode StatusCodeFromName(const std::string& name) {
  static const std::pair<const char*, StatusCode> kCodes[] = {
      {"OK", StatusCode::kOk},
      {"INVALID_ARGUMENT", StatusCode::kInvalidArgument},
      {"NOT_FOUND", StatusCode::kNotFound},
      {"ALREADY_EXISTS", StatusCode::kAlreadyExists},
      {"FAILED_PRECONDITION", StatusCode::kFailedPrecondition},
      {"UNAVAILABLE", StatusCode::kUnavailable},
      {"RESOURCE_EXHAUSTED", StatusCode::kResourceExhausted},
      {"TIMEOUT", StatusCode::kTimeout},
      {"DEADLINE_EXCEEDED", StatusCode::kDeadlineExceeded},
      {"INTERNAL", StatusCode::kInternal},
      {"UNIMPLEMENTED", StatusCode::kUnimplemented},
      {"PARSE_ERROR", StatusCode::kParseError},
      {"SCRIPT_ERROR", StatusCode::kScriptError},
  };
  for (const auto& [text, code] : kCodes) {
    if (name == text) return code;
  }
  return StatusCode::kInternal;
}

std::string Error::ToString() const {
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace vp
