// Virtual-time vocabulary used throughout the simulator and runtime.
//
// All simulation timestamps are integer microseconds since the start
// of the simulation. Integer ticks keep the discrete-event simulator
// fully deterministic across platforms.
#pragma once

#include <cstdint>
#include <string>

namespace vp {

/// A duration in virtual time, microsecond resolution.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration Micros(int64_t us) { return Duration(us); }
  static constexpr Duration Millis(double ms) {
    return Duration(static_cast<int64_t>(ms * 1000.0));
  }
  static constexpr Duration Seconds(double s) {
    return Duration(static_cast<int64_t>(s * 1e6));
  }
  static constexpr Duration Zero() { return Duration(0); }

  constexpr int64_t micros() const { return us_; }
  constexpr double millis() const { return static_cast<double>(us_) / 1e3; }
  constexpr double seconds() const { return static_cast<double>(us_) / 1e6; }

  constexpr Duration operator+(Duration o) const { return Duration(us_ + o.us_); }
  constexpr Duration operator-(Duration o) const { return Duration(us_ - o.us_); }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(us_) * k));
  }
  constexpr Duration operator/(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(us_) / k));
  }
  Duration& operator+=(Duration o) { us_ += o.us_; return *this; }
  Duration& operator-=(Duration o) { us_ -= o.us_; return *this; }
  constexpr auto operator<=>(const Duration&) const = default;

  /// "12.345ms" / "1.200s" — for logs.
  std::string ToString() const;

 private:
  constexpr explicit Duration(int64_t us) : us_(us) {}
  int64_t us_ = 0;
};

/// An absolute point in virtual time.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint FromMicros(int64_t us) { return TimePoint(us); }

  constexpr int64_t micros() const { return us_; }
  constexpr double millis() const { return static_cast<double>(us_) / 1e3; }
  constexpr double seconds() const { return static_cast<double>(us_) / 1e6; }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint(us_ + d.micros());
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint(us_ - d.micros());
  }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::Micros(us_ - o.us_);
  }
  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string ToString() const;

 private:
  constexpr explicit TimePoint(int64_t us) : us_(us) {}
  int64_t us_ = 0;
};

}  // namespace vp
