#include "common/time.hpp"

#include <cstdio>

namespace vp {

std::string Duration::ToString() const {
  char buf[64];
  if (us_ >= 1000000 || us_ <= -1000000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds());
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fms", millis());
  }
  return buf;
}

std::string TimePoint::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t=%.3fms", millis());
  return buf;
}

}  // namespace vp
