#include "common/log.hpp"

#include <cstdio>
#include <mutex>

namespace vp {
namespace {
std::mutex g_sink_mutex;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& message) {
    std::fprintf(stderr, "%-5s %s\n", LogLevelName(level), message.c_str());
  };
}

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  sink_ = std::move(sink);
}

void Logger::Write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (sink_) sink_(level, message);
}

}  // namespace vp
