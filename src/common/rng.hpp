// Deterministic random number generation.
//
// Every stochastic component (motion noise, network jitter, dataset
// generation) draws from an explicitly seeded Rng so that simulations
// and benchmarks are reproducible bit-for-bit. xoshiro256** core with
// a SplitMix64 seeder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vp {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double NextRange(double lo, double hi);

  /// Standard normal via Box–Muller (cached second value).
  double NextGaussian();

  /// Gaussian with the given mean/stddev.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Bernoulli with probability p.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

  /// Derive an independent child stream (for per-component seeding).
  Rng Fork();

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextInt(0, static_cast<int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace vp
