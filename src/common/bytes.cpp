#include "common/bytes.hpp"

#include <cstdio>

namespace vp {

void ByteWriter::WriteU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::WriteF64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void ByteWriter::WriteString(std::string_view s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::WriteBytes(std::span<const uint8_t> data) {
  WriteU32(static_cast<uint32_t>(data.size()));
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::WriteRaw(std::span<const uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

Result<uint8_t> ByteReader::ReadU8() {
  if (!Need(1)) return ParseError("ReadU8 past end");
  return data_[pos_++];
}

Result<uint16_t> ByteReader::ReadU16() {
  if (!Need(2)) return ParseError("ReadU16 past end");
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> ByteReader::ReadU32() {
  if (!Need(4)) return ParseError("ReadU32 past end");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  if (!Need(8)) return ParseError("ReadU64 past end");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<int64_t> ByteReader::ReadI64() {
  auto v = ReadU64();
  if (!v.ok()) return v.error();
  return static_cast<int64_t>(*v);
}

Result<double> ByteReader::ReadF64() {
  auto bits = ReadU64();
  if (!bits.ok()) return bits.error();
  double v = 0.0;
  std::memcpy(&v, &*bits, sizeof(v));
  return v;
}

Result<std::string> ByteReader::ReadString() {
  auto len = ReadU32();
  if (!len.ok()) return len.error();
  if (!Need(*len)) return ParseError("ReadString past end");
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), *len);
  pos_ += *len;
  return s;
}

Result<Bytes> ByteReader::ReadBytes() {
  auto len = ReadU32();
  if (!len.ok()) return len.error();
  if (!Need(*len)) return ParseError("ReadBytes past end");
  Bytes b(data_.begin() + static_cast<ptrdiff_t>(pos_),
          data_.begin() + static_cast<ptrdiff_t>(pos_ + *len));
  pos_ += *len;
  return b;
}

std::string HexDump(std::span<const uint8_t> data, size_t max_bytes) {
  std::string out;
  const size_t n = data.size() < max_bytes ? data.size() : max_bytes;
  char tmp[4];
  for (size_t i = 0; i < n; ++i) {
    std::snprintf(tmp, sizeof(tmp), "%02x", data[i]);
    out += tmp;
    if (i + 1 < n) out += ' ';
  }
  if (data.size() > max_bytes) out += " …";
  return out;
}

uint64_t Fnv1a(std::span<const uint8_t> data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace vp
