#include "json/parse.hpp"

#include <cmath>
#include <cstdlib>

#include "common/strings.hpp"

namespace vp::json {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    auto v = ParseValue();
    if (!v.ok()) return v;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing characters after document");
    return v;
  }

 private:
  Result<Value> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        auto s = ParseString();
        if (!s.ok()) return s.error();
        return Value(std::move(*s));
      }
      case 't':
        if (Match("true")) return Value(true);
        return Fail("invalid literal");
      case 'f':
        if (Match("false")) return Value(false);
        return Fail("invalid literal");
      case 'n':
        if (Match("null")) return Value(nullptr);
        return Fail("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseObject() {
    ++pos_;  // '{'
    Value::Object obj;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      SkipWhitespace();
      if (Peek() == '}') {  // trailing comma
        ++pos_;
        return Value(std::move(obj));
      }
      if (Peek() != '"') return Fail("expected object key string");
      auto key = ParseString();
      if (!key.ok()) return key.error();
      SkipWhitespace();
      if (Peek() != ':') return Fail("expected ':' after key");
      ++pos_;
      auto val = ParseValue();
      if (!val.ok()) return val;
      obj[*key] = std::move(*val);
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return Value(std::move(obj));
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Result<Value> ParseArray() {
    ++pos_;  // '['
    Value::Array arr;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      SkipWhitespace();
      if (Peek() == ']') {  // trailing comma
        ++pos_;
        return Value(std::move(arr));
      }
      auto val = ParseValue();
      if (!val.ok()) return val;
      arr.push_back(std::move(*val));
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return Value(std::move(arr));
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return FailStr("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return FailStr("bad hex digit in \\u escape");
            }
            pos_ += 4;
            // Encode as UTF-8 (BMP only; surrogate pairs are passed
            // through as two 3-byte sequences — enough for our configs).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return FailStr("unknown escape character");
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    return FailStr("unterminated string");
  }

  Result<Value> ParseNumber() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      return Fail("invalid number '" + token + "'");
    }
    return Value(v);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
        continue;
      }
      // `//` line comment extension.
      if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      break;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool Match(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Error Fail(const std::string& what) const { return FailStr(what); }

  Error FailStr(const std::string& what) const {
    size_t line = 1;
    size_t col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return ParseError(Format("json:%zu:%zu: %s", line, col, what.c_str()));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace vp::json
