// JSON serialization.
#pragma once

#include <string>

#include "json/value.hpp"

namespace vp::json {

/// Serialize `v`. `indent < 0` → compact single line; otherwise pretty
/// print with the given indent width.
std::string Write(const Value& v, int indent = -1);

/// Number of Write() calls so far in this process. Lets tests assert
/// that hot paths (Message::ByteSize) don't re-serialize payloads.
uint64_t WriteCallCountForTest();

/// Escape a string for embedding in JSON (without surrounding quotes).
std::string EscapeString(const std::string& s);

}  // namespace vp::json
