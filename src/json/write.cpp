#include "json/write.hpp"

#include <cmath>
#include <cstdio>

namespace vp::json {
namespace {

void WriteNumber(std::string& out, double d) {
  // Integers print without a fractional part; everything else uses
  // shortest-ish %.17g for round-tripping.
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

void WriteImpl(const Value& v, int indent, int depth, std::string& out) {
  const bool pretty = indent >= 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<size_t>(indent * d), ' ');
  };
  switch (v.type()) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += v.AsBool() ? "true" : "false";
      break;
    case Type::kNumber:
      WriteNumber(out, v.AsDouble());
      break;
    case Type::kString:
      out += '"';
      out += EscapeString(v.AsString());
      out += '"';
      break;
    case Type::kArray: {
      const auto& arr = v.AsArray();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (size_t i = 0; i < arr.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        WriteImpl(arr[i], indent, depth + 1, out);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      const auto& obj = v.AsObject();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, val] : obj) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        out += '"';
        out += EscapeString(k);
        out += "\":";
        if (pretty) out += ' ';
        WriteImpl(val, indent, depth + 1, out);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string EscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {
uint64_t g_write_calls = 0;
}

uint64_t WriteCallCountForTest() { return g_write_calls; }

std::string Write(const Value& v, int indent) {
  ++g_write_calls;
  std::string out;
  WriteImpl(v, indent, 0, out);
  if (indent >= 0) out += '\n';
  return out;
}

}  // namespace vp::json
