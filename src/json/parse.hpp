// JSON parser (strict RFC-8259 plus two conveniences used by our
// configuration files: `//` line comments and trailing commas).
#pragma once

#include <string_view>

#include "common/error.hpp"
#include "json/value.hpp"

namespace vp::json {

/// Parse a complete JSON document. Errors carry line/column context.
Result<Value> Parse(std::string_view text);

}  // namespace vp::json
