#include "json/value.hpp"

#include "json/write.hpp"

namespace vp::json {

const char* TypeName(Type t) {
  switch (t) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

Value& Value::Object::operator[](const std::string& key) {
  for (auto& [k, v] : items_) {
    if (k == key) return v;
  }
  items_.emplace_back(key, Value());
  return items_.back().second;
}

const Value* Value::Object::Find(const std::string& key) const {
  for (const auto& [k, v] : items_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value* Value::Object::Find(const std::string& key) {
  for (auto& [k, v] : items_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool Value::Object::Erase(const std::string& key) {
  for (auto it = items_.begin(); it != items_.end(); ++it) {
    if (it->first == key) {
      items_.erase(it);
      return true;
    }
  }
  return false;
}

bool Value::Object::operator==(const Object& o) const {
  return items_ == o.items_;
}

Type Value::type() const {
  switch (data_.index()) {
    case 0: return Type::kNull;
    case 1: return Type::kBool;
    case 2: return Type::kNumber;
    case 3: return Type::kString;
    case 4: return Type::kArray;
    default: return Type::kObject;
  }
}

bool Value::GetBool(const std::string& key, bool fallback) const {
  const Value* v = Find(key);
  return (v && v->is_bool()) ? v->AsBool() : fallback;
}

double Value::GetDouble(const std::string& key, double fallback) const {
  const Value* v = Find(key);
  return (v && v->is_number()) ? v->AsDouble() : fallback;
}

int64_t Value::GetInt(const std::string& key, int64_t fallback) const {
  const Value* v = Find(key);
  return (v && v->is_number()) ? v->AsInt() : fallback;
}

std::string Value::GetString(const std::string& key,
                             const std::string& fallback) const {
  const Value* v = Find(key);
  return (v && v->is_string()) ? v->AsString() : fallback;
}

const Value* Value::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  return AsObject().Find(key);
}

Value& Value::operator[](const std::string& key) {
  if (is_null()) data_ = Object{};
  return AsObject()[key];
}

void Value::PushBack(Value v) {
  if (is_null()) data_ = Array{};
  AsArray().push_back(std::move(v));
}

std::string Value::Dump() const { return Write(*this, /*indent=*/-1); }

}  // namespace vp::json
