// JSON document model.
//
// `json::Value` is the lingua franca of VideoPipe: pipeline
// configuration files, module messages, service requests/responses and
// script-engine interop all use it. Objects preserve insertion order
// (configuration files read back the way they were written).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/error.hpp"

namespace vp::json {

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

const char* TypeName(Type t);

class Value {
 public:
  using Array = std::vector<Value>;
  /// Insertion-ordered map.
  class Object {
   public:
    Value& operator[](const std::string& key);
    const Value* Find(const std::string& key) const;
    Value* Find(const std::string& key);
    bool Contains(const std::string& key) const { return Find(key) != nullptr; }
    bool Erase(const std::string& key);
    size_t size() const { return items_.size(); }
    bool empty() const { return items_.empty(); }
    auto begin() const { return items_.begin(); }
    auto end() const { return items_.end(); }
    auto begin() { return items_.begin(); }
    auto end() { return items_.end(); }
    bool operator==(const Object& o) const;

   private:
    std::vector<std::pair<std::string, Value>> items_;
  };

  // -- Constructors ---------------------------------------------------
  Value() : data_(nullptr) {}                       // null
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(int64_t i) : data_(static_cast<double>(i)) {}
  Value(size_t i) : data_(static_cast<double>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  static Value MakeArray() { return Value(Array{}); }
  static Value MakeObject() { return Value(Object{}); }

  // -- Type inspection --------------------------------------------------
  Type type() const;
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  // -- Accessors (assert on wrong type) ---------------------------------
  bool AsBool() const { return std::get<bool>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  int64_t AsInt() const { return static_cast<int64_t>(std::get<double>(data_)); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  const Array& AsArray() const { return std::get<Array>(data_); }
  Array& AsArray() { return std::get<Array>(data_); }
  const Object& AsObject() const { return std::get<Object>(data_); }
  Object& AsObject() { return std::get<Object>(data_); }

  // -- Tolerant accessors with defaults ---------------------------------
  bool GetBool(const std::string& key, bool fallback = false) const;
  double GetDouble(const std::string& key, double fallback = 0.0) const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback = {}) const;

  /// Object member lookup; nullptr when not an object / key missing.
  const Value* Find(const std::string& key) const;

  /// Object member write access (creates the member; value must be an
  /// object — call on a default-constructed Value to auto-vivify one).
  Value& operator[](const std::string& key);
  /// Array element access (asserts).
  const Value& operator[](size_t i) const { return AsArray()[i]; }

  void PushBack(Value v);

  bool operator==(const Value& o) const { return data_ == o.data_; }

  /// Compact single-line serialization. See write.hpp for pretty print.
  std::string Dump() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

}  // namespace vp::json
