#include "apps/iot.hpp"

namespace vp::apps {

void IoTHub::Execute(const std::string& device, const std::string& action,
                     TimePoint when) {
  log_.push_back(Command{when, device, action});
  auto it = devices_.find(device);
  if (it == devices_.end()) return;
  DeviceState& state = it->second;
  if (action == "toggle") {
    state.on = !state.on;
    ++state.toggles;
  } else if (action == "on") {
    if (!state.on) ++state.toggles;
    state.on = true;
  } else if (action == "off") {
    if (state.on) ++state.toggles;
    state.on = false;
  }
}

const IoTHub::DeviceState* IoTHub::Find(const std::string& device) const {
  auto it = devices_.find(device);
  return it == devices_.end() ? nullptr : &it->second;
}

script::HostFunction IoTHub::MakeHostFunction(sim::Simulator* sim) {
  return [this, sim](std::vector<script::Value>& args,
                     script::Interpreter&) -> Result<script::Value> {
    if (args.size() < 2 || !args[0].is_string() || !args[1].is_string()) {
      return ScriptError("iot_command(device, action) expects two strings");
    }
    Execute(args[0].AsString(), args[1].AsString(), sim->Now());
    return script::Value(true);
  };
}

}  // namespace vp::apps
