// Simulated IoT device hub for the gesture-control application
// (§4.2: "using 'clapping' to toggle the light in the living room and
// using 'waving' to toggle a doorbell camera").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "script/value.hpp"
#include "sim/simulator.hpp"

namespace vp::apps {

class IoTHub {
 public:
  struct Command {
    TimePoint when;
    std::string device;
    std::string action;
  };
  struct DeviceState {
    bool on = false;
    int toggles = 0;
  };

  /// Register a controllable device.
  void AddDevice(const std::string& name) { devices_[name]; }

  /// Apply a command ("toggle", "on", "off"). Unknown devices/actions
  /// are recorded but ignored.
  void Execute(const std::string& device, const std::string& action,
               TimePoint when);

  const std::vector<Command>& log() const { return log_; }
  const DeviceState* Find(const std::string& device) const;

  /// Host function `iot_command(device, action)` for module scripts.
  script::HostFunction MakeHostFunction(sim::Simulator* sim);

 private:
  std::map<std::string, DeviceState> devices_;
  std::vector<Command> log_;
};

}  // namespace vp::apps
