#include "apps/fitness.hpp"

namespace vp::apps::fitness {

namespace {

// ---- Module sources (vpscript) ---------------------------------------

const char* kPoseDetectionModule = R"JS(
// Pose detection module: runs the heavyweight pose CNN via the
// stateless pose_detector service and forwards the skeleton.
function event_received(msg) {
  var pose = call_service("pose_detector", { frame_id: msg.frame_id });
  call_module("activity_detector_module", {
    frame_id: msg.frame_id,
    seq: msg.seq,
    pose: pose
  });
}
)JS";

const char* kActivityDetectorModule = R"JS(
// Activity recognition over a sliding window of 15 poses (paper
// §4.1.2). Until the window fills, reports "warming_up".
var history = [];

function event_received(msg) {
  history.push(msg.pose);
  if (history.length > 15) history.shift();

  var label = "warming_up";
  var confidence = 0;
  if (history.length == 15) {
    var res = call_service("activity_classifier", { poses: history });
    label = res.label;
    confidence = res.confidence;
  }

  // Fan-out per Listing 1: the display gets the frame + label, the rep
  // counter gets the fresh pose.
  call_module("display_module", {
    frame_id: msg.frame_id,
    seq: msg.seq,
    activity: label,
    confidence: confidence
  });
  call_module("rep_counter_module", {
    seq: msg.seq,
    pose: msg.pose,
    activity: label
  });
}
)JS";

const char* kRepCounterModule = R"JS(
// Rep counting (paper §4.1.3). The service is stateless: the evolving
// cluster state lives here, in the module, and rides along with every
// request.
var state = null;

function event_received(msg) {
  var req = { pose: msg.pose };
  if (state != null) {
    req.state = state;
  }
  var res = call_service("rep_counter", req);
  state = res.state;
  call_module("display_module", {
    seq: msg.seq,
    reps: res.reps,
    activity: msg.activity
  });
}
)JS";

const char* kDisplayModule = R"JS(
// Display module on the TV: renders the frame with the activity label
// and rep count (Fig. 3). Messages without a frame are overlay-state
// updates from the rep counter.
var reps = 0;
var activity = "unknown";
var frames_rendered = 0;

function event_received(msg) {
  if (msg.reps != undefined) {
    reps = msg.reps;
    if (msg.activity != undefined) activity = msg.activity;
    return;
  }
  if (msg.activity != undefined) activity = msg.activity;
  call_service("display", {
    frame_id: msg.frame_id,
    overlay: { activity: activity, reps: reps }
  });
  frames_rendered = frames_rendered + 1;
}
)JS";

}  // namespace

std::string ConfigJson() {
  return R"CFG(
// Fitness application pipeline (paper Listing 1 / Fig. 4).
{
  "name": "fitness",
  "priority": "background",
  "source": { "module": "video_streaming_module",
              "fps": 20, "width": 320, "height": 240 },
  "modules": [
    { "name": "video_streaming_module", "type": "source",
      "endpoint": "bind#tcp://*:5860",
      "next_module": ["pose_detection_module"] },

    { "name": "pose_detection_module",
      "include": "PoseDetectionModule.js",
      "service": ["pose_detector"],
      "endpoint": "bind#tcp://*:5861",
      "next_module": ["activity_detector_module"] },

    { "name": "activity_detector_module",
      "include": "ActivityDetectorModule.js",
      "service": ["activity_classifier"],
      "endpoint": "bind#tcp://*:5862",
      "next_module": ["rep_counter_module", "display_module"] },

    { "name": "rep_counter_module",
      "include": "RepCounterModule.js",
      "service": ["rep_counter"],
      "endpoint": "bind#tcp://*:5863",
      "next_module": ["display_module"] },

    { "name": "display_module",
      "include": "DisplayModule.js",
      "service": ["display"],
      "endpoint": "bind#tcp://*:5864",
      "signal_source": true,
      "next_module": [] }
  ]
}
)CFG";
}

core::ScriptResolver Scripts() {
  return core::MapResolver({
      {"PoseDetectionModule.js", kPoseDetectionModule},
      {"ActivityDetectorModule.js", kActivityDetectorModule},
      {"RepCounterModule.js", kRepCounterModule},
      {"DisplayModule.js", kDisplayModule},
  });
}

Result<core::PipelineSpec> Spec() {
  return core::ParsePipelineConfigText(ConfigJson(), Scripts());
}

}  // namespace vp::apps::fitness
