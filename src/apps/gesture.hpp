// Gesture-based IoT control application (paper §4.2): the same pose
// detector service as the fitness app (shared!), an activity
// classifier tuned to gestures, and an IoT control module that toggles
// the living-room light on a clap and the doorbell camera on a wave.
#pragma once

#include <string>

#include "apps/iot.hpp"
#include "core/config.hpp"
#include "core/orchestrator.hpp"
#include "media/video_source.hpp"

namespace vp::apps::gesture {

std::string ConfigJson();
core::ScriptResolver Scripts();
Result<core::PipelineSpec> Spec();

inline media::MotionScript GestureSession() {
  return media::DefaultGestureScript();
}

/// Deployment args with the iot_command host function bound to `hub`
/// and the default gesture workload installed. The hub must outlive
/// the orchestrator.
core::Orchestrator::DeployArgs MakeDeployArgs(IoTHub& hub,
                                              sim::Simulator* sim);

}  // namespace vp::apps::gesture
