#include "apps/gesture.hpp"

namespace vp::apps::gesture {

namespace {

const char* kPoseDetectionModule = R"JS(
function event_received(msg) {
  var pose = call_service("pose_detector", { frame_id: msg.frame_id });
  call_module("gesture_recognition_module", { seq: msg.seq, pose: pose });
}
)JS";

const char* kGestureRecognitionModule = R"JS(
// Same sliding-window classifier as the fitness app, but routed to
// the IoT controller. "The activity classifier can be trained with
// custom actions that trigger custom behaviours" (§4.2).
var history = [];

function event_received(msg) {
  history.push(msg.pose);
  if (history.length > 15) history.shift();

  var gesture = "none";
  var confidence = 0;
  if (history.length == 15) {
    var res = call_service("activity_classifier", { poses: history });
    gesture = res.label;
    confidence = res.confidence;
  }
  call_module("iot_control_module", {
    seq: msg.seq,
    gesture: gesture,
    confidence: confidence
  });
}
)JS";

const char* kIotControlModule = R"JS(
// Debounced gesture → action rules: a gesture must be observed for 5
// consecutive frames, then a refractory period suppresses re-triggers
// while the user is still mid-gesture.
var last = "";
var streak = 0;
var cooldown = 0;
var actions = 0;

function event_received(msg) {
  var g = msg.gesture;
  if (g == last) {
    streak = streak + 1;
  } else {
    last = g;
    streak = 1;
  }
  if (cooldown > 0) cooldown = cooldown - 1;
  if (streak >= 5 && cooldown == 0 && msg.confidence >= 0.5) {
    if (g == "clap") {
      iot_command("living_room_light", "toggle");
      actions = actions + 1;
      cooldown = 25;
    }
    if (g == "wave") {
      iot_command("doorbell_camera", "toggle");
      actions = actions + 1;
      cooldown = 25;
    }
  }
}
)JS";

}  // namespace

std::string ConfigJson() {
  return R"CFG(
// Gesture-control pipeline (paper §4.2).
{
  "name": "gesture",
  "source": { "module": "video_streaming_module",
              "fps": 20, "width": 320, "height": 240 },
  "modules": [
    { "name": "video_streaming_module", "type": "source",
      "endpoint": "bind#tcp://*:5960",
      "next_module": ["pose_detection_module"] },

    { "name": "pose_detection_module",
      "include": "GesturePoseModule.js",
      "service": ["pose_detector"],
      "endpoint": "bind#tcp://*:5961",
      "next_module": ["gesture_recognition_module"] },

    { "name": "gesture_recognition_module",
      "include": "GestureRecognitionModule.js",
      "service": ["activity_classifier"],
      "endpoint": "bind#tcp://*:5962",
      "next_module": ["iot_control_module"] },

    { "name": "iot_control_module",
      "include": "IotControlModule.js",
      "endpoint": "bind#tcp://*:5963",
      "signal_source": true,
      "next_module": [] }
  ]
}
)CFG";
}

core::ScriptResolver Scripts() {
  return core::MapResolver({
      {"GesturePoseModule.js", kPoseDetectionModule},
      {"GestureRecognitionModule.js", kGestureRecognitionModule},
      {"IotControlModule.js", kIotControlModule},
  });
}

Result<core::PipelineSpec> Spec() {
  return core::ParsePipelineConfigText(ConfigJson(), Scripts());
}

core::Orchestrator::DeployArgs MakeDeployArgs(IoTHub& hub,
                                              sim::Simulator* sim) {
  hub.AddDevice("living_room_light");
  hub.AddDevice("doorbell_camera");
  core::Orchestrator::DeployArgs args;
  args.workload = GestureSession();
  args.seed = 11;
  args.extra_host_functions["iot_control_module"].emplace_back(
      "iot_command", hub.MakeHostFunction(sim));
  return args;
}

}  // namespace vp::apps::gesture
