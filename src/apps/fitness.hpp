// The fitness application (paper §4.1, Fig. 4):
//   phone camera → pose detection → activity recognition →
//   { rep counter, display } → display on the TV.
//
// Module logic is written in vpscript (the runtime the paper runs on
// Duktape); the pipeline wiring is the paper's Listing-1 configuration
// expressed as JSON.
#pragma once

#include <string>

#include "core/config.hpp"
#include "media/video_source.hpp"

namespace vp::apps::fitness {

/// The Listing-1-style configuration document.
std::string ConfigJson();

/// Resolver mapping the config's `include` names to vpscript sources.
core::ScriptResolver Scripts();

/// Parse + validate the pipeline spec.
Result<core::PipelineSpec> Spec();

/// The default camera workload (a workout session).
inline media::MotionScript Workout() {
  return media::DefaultWorkoutScript();
}

}  // namespace vp::apps::fitness
