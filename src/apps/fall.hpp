// Fall-detection application (paper §4.3): pose detection → fall
// monitor → alert. Alerts land in an AlertLog via a host function, the
// stand-in for paging a caregiver / emergency contact.
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/orchestrator.hpp"
#include "media/video_source.hpp"

namespace vp::apps::fall {

struct Alert {
  TimePoint when;
  double fallen_fraction = 0;
  double torso_angle_deg = 0;
};

class AlertLog {
 public:
  const std::vector<Alert>& alerts() const { return alerts_; }
  script::HostFunction MakeHostFunction(sim::Simulator* sim);

 private:
  std::vector<Alert> alerts_;
};

std::string ConfigJson();
core::ScriptResolver Scripts();
Result<core::PipelineSpec> Spec();

/// A session where the person exercises briefly, then falls.
media::MotionScript FallSession();

core::Orchestrator::DeployArgs MakeDeployArgs(AlertLog& log,
                                              sim::Simulator* sim);

}  // namespace vp::apps::fall
