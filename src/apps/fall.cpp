#include "apps/fall.hpp"

namespace vp::apps::fall {

script::HostFunction AlertLog::MakeHostFunction(sim::Simulator* sim) {
  return [this, sim](std::vector<script::Value>& args,
                     script::Interpreter&) -> Result<script::Value> {
    Alert alert;
    alert.when = sim->Now();
    if (!args.empty() && args[0].is_object()) {
      const auto& obj = args[0].AsObject();
      if (const script::Value* v = obj->Find("fallen_fraction");
          v != nullptr && v->is_number()) {
        alert.fallen_fraction = v->AsNumber();
      }
      if (const script::Value* v = obj->Find("torso_angle_deg");
          v != nullptr && v->is_number()) {
        alert.torso_angle_deg = v->AsNumber();
      }
    }
    alerts_.push_back(alert);
    return script::Value(true);
  };
}

namespace {

const char* kPoseDetectionModule = R"JS(
function event_received(msg) {
  var pose = call_service("pose_detector", { frame_id: msg.frame_id });
  call_module("fall_monitor_module", { seq: msg.seq, pose: pose });
}
)JS";

const char* kFallMonitorModule = R"JS(
// Sliding window of recent poses fed to the stateless fall_detector
// service; alerts once per fall episode (rising edge).
var window = [];
var was_fallen = false;

function event_received(msg) {
  window.push(msg.pose);
  if (window.length > 10) window.shift();

  var verdict = { fallen: false };
  if (window.length >= 5) {
    verdict = call_service("fall_detector", { poses: window });
  }
  if (verdict.fallen && !was_fallen) {
    raise_alert({
      fallen_fraction: verdict.fallen_fraction,
      torso_angle_deg: verdict.torso_angle_deg
    });
  }
  was_fallen = verdict.fallen;
}
)JS";

}  // namespace

std::string ConfigJson() {
  return R"CFG(
// Fall-detection pipeline (paper §4.3).
{
  "name": "fall_detection",
  "priority": "interactive",
  "source": { "module": "video_streaming_module",
              "fps": 15, "width": 320, "height": 240 },
  "modules": [
    { "name": "video_streaming_module", "type": "source",
      "endpoint": "bind#tcp://*:6060",
      "next_module": ["pose_detection_module"] },

    { "name": "pose_detection_module",
      "include": "FallPoseModule.js",
      "service": ["pose_detector"],
      "endpoint": "bind#tcp://*:6061",
      "next_module": ["fall_monitor_module"] },

    { "name": "fall_monitor_module",
      "include": "FallMonitorModule.js",
      "service": ["fall_detector"],
      "endpoint": "bind#tcp://*:6062",
      "signal_source": true,
      "next_module": [] }
  ]
}
)CFG";
}

core::ScriptResolver Scripts() {
  return core::MapResolver({
      {"FallPoseModule.js", kPoseDetectionModule},
      {"FallMonitorModule.js", kFallMonitorModule},
  });
}

Result<core::PipelineSpec> Spec() {
  return core::ParsePipelineConfigText(ConfigJson(), Scripts());
}

media::MotionScript FallSession() {
  media::MotionParams fall_params;
  fall_params.period = 6.0;  // stand 2.4 s, fall over 1.8 s, lie still
  auto script = media::MotionScript::Make({
      {"idle", 4.0, {}},
      {"squat", 6.0, {}},
      {"idle", 2.0, {}},
      {"fall", 8.0, fall_params},
  });
  return std::move(*script);
}

core::Orchestrator::DeployArgs MakeDeployArgs(AlertLog& log,
                                              sim::Simulator* sim) {
  core::Orchestrator::DeployArgs args;
  args.workload = FallSession();
  args.seed = 13;
  args.extra_host_functions["fall_monitor_module"].emplace_back(
      "raise_alert", log.MakeHostFunction(sim));
  return args;
}

}  // namespace vp::apps::fall
