// Synthetic camera.
//
// Deterministically generates the video feed a phone camera would
// capture of a person following a MotionScript. Each frame carries
// ground-truth annotations (activity label, cumulative reps, true
// pose in pixel space) used only by accuracy evaluations.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "media/frame.hpp"
#include "media/motion.hpp"
#include "media/renderer.hpp"

namespace vp::media {

class SyntheticVideoSource {
 public:
  SyntheticVideoSource(MotionScript script, double fps,
                       SceneOptions scene = {}, uint64_t seed = 7);

  double fps() const { return fps_; }
  const SceneOptions& scene() const { return scene_; }
  const MotionScript& script() const { return script_; }

  /// Number of frames the script covers at this fps.
  uint64_t frame_count() const;

  /// Generate frame `seq` (deterministic in seq). The frame's id is 0
  /// until registered with a FrameStore.
  Frame CaptureFrame(uint64_t seq) const;

  /// Capture timestamp of frame `seq`.
  TimePoint CaptureTime(uint64_t seq) const {
    return TimePoint::FromMicros(
        static_cast<int64_t>(static_cast<double>(seq) * 1e6 / fps_));
  }

 private:
  MotionScript script_;
  double fps_;
  SceneOptions scene_;
  uint64_t seed_;
};

/// The default fitness-session script used by the examples and
/// benchmarks: idle → squats → jumping jacks → lunges → idle.
MotionScript DefaultWorkoutScript();

/// Gesture-session script: idle → wave → idle → clap → idle.
MotionScript DefaultGestureScript();

}  // namespace vp::media
