// Video frames.
#pragma once

#include <cstdint>
#include <memory>

#include "common/time.hpp"
#include "json/value.hpp"
#include "media/image.hpp"

namespace vp::media {

/// Frame ids are opaque 64-bit handles; 0 is "no frame".
using FrameId = uint64_t;
inline constexpr FrameId kInvalidFrameId = 0;

struct Frame {
  FrameId id = kInvalidFrameId;
  /// Source sequence number (frame index at the camera).
  uint64_t seq = 0;
  /// Virtual capture timestamp.
  TimePoint capture_time;
  Image image;
  /// Ground-truth annotations from the synthetic source (activity
  /// label, rep count, true pose). Never consulted by the CV services
  /// — only by accuracy evaluations.
  json::Value ground_truth;
};

using FramePtr = std::shared_ptr<const Frame>;

}  // namespace vp::media
