// Scene renderer: turns a body Pose into a raster camera frame.
//
// The scene is a dim living room (noisy dark background, optional
// colored props) with the person drawn as gray bones plus per-joint
// color-coded markers. The pose detector recovers the keypoints from
// these pixels; sensor noise, quantization and marker occlusion make
// its output honestly imperfect.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "media/image.hpp"
#include "media/skeleton.hpp"

namespace vp::media {

/// A static colored object in the scene (for the object-detection
/// service): normalized position/size, solid color.
struct Prop {
  std::string class_name;
  double x = 0, y = 0, w = 0.1, h = 0.1;  // normalized to image
  Rgb color;
};

struct SceneOptions {
  int width = 160;
  int height = 120;
  /// Person placement: body-space unit square maps to a box of
  /// person_height × (person_height * 0.6) pixels, feet at
  /// person_foot_y (normalized).
  double person_center_x = 0.5;
  double person_foot_y = 0.97;
  double person_height = 0.88;  // fraction of image height
  /// Sensor noise stddev (per channel, 8-bit).
  double noise_stddev = 3.0;
  /// Joint marker radius in pixels.
  double joint_radius = 2.2;
  double bone_thickness = 2.0;
  /// Mid-quantization-bucket color so codec round-trips keep the
  /// background flat (see codec.hpp).
  Rgb background{24, 24, 24};
  std::vector<Prop> props;
};

/// Render one frame; `frame_seed` drives the sensor noise so each
/// frame differs (deterministically).
Image RenderScene(const Pose& pose, const SceneOptions& options,
                  uint64_t frame_seed);

/// The body-space → pixel transform used by RenderScene; exposed so
/// accuracy evaluations can map ground-truth poses into pixel space.
Point2 BodyToPixel(const Point2& body_point, const SceneOptions& options);

}  // namespace vp::media
