#include "media/codec.hpp"

#include "json/parse.hpp"
#include "json/write.hpp"

namespace vp::media {

namespace {
constexpr uint32_t kFrameMagic = 0x56504631;  // "VPF1"
}

Bytes EncodeFrame(const Frame& frame) {
  ByteWriter w;
  w.WriteU32(kFrameMagic);
  w.WriteU64(frame.seq);
  w.WriteI64(frame.capture_time.micros());
  w.WriteString(json::Write(frame.ground_truth));
  w.WriteU16(static_cast<uint16_t>(frame.image.width()));
  w.WriteU16(static_cast<uint16_t>(frame.image.height()));

  // Lossy compression, JPEG-in-spirit: quantize each channel to 16
  // levels (sensor noise collapses into the bucket), then RLE over the
  // quantized RGB triples: (run_len u8, r', g', b'), max run 255.
  const auto& data = frame.image.data();
  ByteWriter rle;
  size_t i = 0;
  const size_t n = data.size();
  const auto quant = [](uint8_t v) -> uint8_t {
    return static_cast<uint8_t>(v >> 4);
  };
  while (i + 2 < n) {
    const uint8_t r = quant(data[i]);
    const uint8_t g = quant(data[i + 1]);
    const uint8_t b = quant(data[i + 2]);
    size_t run = 1;
    while (run < 255 && i + run * 3 + 2 < n &&
           quant(data[i + run * 3]) == r &&
           quant(data[i + run * 3 + 1]) == g &&
           quant(data[i + run * 3 + 2]) == b) {
      ++run;
    }
    rle.WriteU8(static_cast<uint8_t>(run));
    rle.WriteU8(r);
    rle.WriteU8(g);
    rle.WriteU8(b);
    i += run * 3;
  }
  w.WriteBytes(rle.data());
  return w.Take();
}

Result<Frame> DecodeFrame(std::span<const uint8_t> data) {
  ByteReader r(data);
  auto magic = r.ReadU32();
  if (!magic.ok()) return magic.error();
  if (*magic != kFrameMagic) return ParseError("bad frame magic");

  Frame frame;
  auto seq = r.ReadU64();
  if (!seq.ok()) return seq.error();
  frame.seq = *seq;

  auto cap = r.ReadI64();
  if (!cap.ok()) return cap.error();
  frame.capture_time = TimePoint::FromMicros(*cap);

  auto gt_text = r.ReadString();
  if (!gt_text.ok()) return gt_text.error();
  auto gt = json::Parse(*gt_text);
  if (!gt.ok()) return gt.error();
  frame.ground_truth = std::move(*gt);

  auto w16 = r.ReadU16();
  if (!w16.ok()) return w16.error();
  auto h16 = r.ReadU16();
  if (!h16.ok()) return h16.error();

  auto rle = r.ReadBytes();
  if (!rle.ok()) return rle.error();

  Image image(*w16, *h16);
  auto& out = image.data();
  size_t pos = 0;
  const Bytes& src = *rle;
  size_t si = 0;
  while (si + 4 <= src.size()) {
    const uint8_t run = src[si];
    // Dequantize to bucket centers.
    const auto dequant = [](uint8_t q) -> uint8_t {
      return static_cast<uint8_t>((q << 4) | 8);
    };
    const uint8_t cr = dequant(src[si + 1]);
    const uint8_t cg = dequant(src[si + 2]);
    const uint8_t cb = dequant(src[si + 3]);
    si += 4;
    for (uint8_t k = 0; k < run; ++k) {
      if (pos + 2 >= out.size()) {
        return ParseError("frame RLE overruns pixel buffer");
      }
      out[pos] = cr;
      out[pos + 1] = cg;
      out[pos + 2] = cb;
      pos += 3;
    }
  }
  if (pos != out.size()) return ParseError("frame RLE underfills pixel buffer");
  frame.image = std::move(image);
  return frame;
}

Duration EncodeCost(const Image& image) {
  const double megapixels =
      static_cast<double>(image.width()) * image.height() / 1e6;
  return Duration::Millis(0.3 + 19.5 * megapixels);  // 640x480 ≈ 6 ms
}

Duration DecodeCost(size_t encoded_bytes) {
  return Duration::Millis(0.3 + static_cast<double>(encoded_bytes) / 12000.0);
}

}  // namespace vp::media
