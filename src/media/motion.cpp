#include "media/motion.hpp"

#include <cmath>

namespace vp::media {
namespace {

/// Cycle position in [0,1): 0 = start/rest position.
double CyclePos(double t, const MotionParams& p) {
  const double cycles = t / p.period + p.phase;
  return cycles - std::floor(cycles);
}

/// Smooth 0→1→0 bump over one cycle (rest at cycle boundaries).
double Bump(double cycle_pos) {
  return 0.5 * (1.0 - std::cos(2.0 * M_PI * cycle_pos));
}

int FullCycles(double t, const MotionParams& p) {
  if (t <= 0) return 0;
  return static_cast<int>(std::floor(t / p.period));
}

class IdleMotion : public MotionModel {
 public:
  explicit IdleMotion(MotionParams p) : p_(p) {}
  std::string label() const override { return "idle"; }
  Pose PoseAt(double t) const override {
    Pose pose = Pose::Standing();
    // Gentle sway.
    const double sway = 0.008 * p_.amplitude *
                        std::sin(2.0 * M_PI * t / (p_.period * 2.0));
    for (auto& pt : pose.points) pt.x += sway;
    return pose;
  }

 private:
  MotionParams p_;
};

class SquatMotion : public MotionModel {
 public:
  explicit SquatMotion(MotionParams p) : p_(p) {}
  std::string label() const override { return "squat"; }
  Pose PoseAt(double t) const override {
    Pose pose = Pose::Standing();
    const double depth = 0.16 * p_.amplitude * Bump(CyclePos(t, p_));
    // Hips and torso sink; knees bend outward; arms raise forward for
    // balance.
    for (int k : {kNose, kLeftEye, kRightEye, kLeftEar, kRightEar,
                  kLeftShoulder, kRightShoulder, kLeftElbow, kRightElbow,
                  kLeftWrist, kRightWrist, kLeftHip, kRightHip}) {
      pose[k].y += depth;
    }
    pose[kLeftKnee].y += depth * 0.45;
    pose[kRightKnee].y += depth * 0.45;
    pose[kLeftKnee].x -= depth * 0.30;
    pose[kRightKnee].x += depth * 0.30;
    // Arms extend forward (drawn as horizontal reach).
    pose[kLeftWrist].x -= depth * 0.55;
    pose[kRightWrist].x += depth * 0.55;
    pose[kLeftWrist].y -= depth * 0.9;
    pose[kRightWrist].y -= depth * 0.9;
    return pose;
  }
  int RepsCompleted(double t) const override { return FullCycles(t, p_); }

 private:
  MotionParams p_;
};

class JumpingJackMotion : public MotionModel {
 public:
  explicit JumpingJackMotion(MotionParams p) : p_(p) {}
  std::string label() const override { return "jumping_jack"; }
  Pose PoseAt(double t) const override {
    Pose pose = Pose::Standing();
    const double u = Bump(CyclePos(t, p_)) * p_.amplitude;
    // Arms sweep from sides to overhead.
    pose[kLeftElbow].x -= 0.05 * u;
    pose[kRightElbow].x += 0.05 * u;
    pose[kLeftElbow].y -= 0.22 * u;
    pose[kRightElbow].y -= 0.22 * u;
    pose[kLeftWrist].x += 0.06 * u;   // wrists end up above the head
    pose[kRightWrist].x -= 0.06 * u;
    pose[kLeftWrist].y -= 0.52 * u;
    pose[kRightWrist].y -= 0.52 * u;
    // Legs spread.
    pose[kLeftKnee].x -= 0.08 * u;
    pose[kRightKnee].x += 0.08 * u;
    pose[kLeftAnkle].x -= 0.14 * u;
    pose[kRightAnkle].x += 0.14 * u;
    // Small hop.
    const double hop = 0.02 * u;
    for (auto& pt : pose.points) pt.y -= hop;
    return pose;
  }
  int RepsCompleted(double t) const override { return FullCycles(t, p_); }

 private:
  MotionParams p_;
};

class LungeMotion : public MotionModel {
 public:
  explicit LungeMotion(MotionParams p) : p_(p) {}
  std::string label() const override { return "lunge"; }
  Pose PoseAt(double t) const override {
    Pose pose = Pose::Standing();
    const double u = Bump(CyclePos(t, p_)) * p_.amplitude;
    // Left leg steps forward (in 2D: to the left) and bends; body
    // sinks.
    pose[kLeftKnee].x -= 0.16 * u;
    pose[kLeftAnkle].x -= 0.22 * u;
    pose[kLeftKnee].y += 0.05 * u;
    pose[kRightKnee].x += 0.06 * u;
    pose[kRightKnee].y += 0.12 * u;
    pose[kRightAnkle].x += 0.10 * u;
    const double sink = 0.10 * u;
    for (int k : {kNose, kLeftEye, kRightEye, kLeftEar, kRightEar,
                  kLeftShoulder, kRightShoulder, kLeftElbow, kRightElbow,
                  kLeftWrist, kRightWrist, kLeftHip, kRightHip}) {
      pose[k].y += sink;
    }
    return pose;
  }
  int RepsCompleted(double t) const override { return FullCycles(t, p_); }

 private:
  MotionParams p_;
};

class WaveMotion : public MotionModel {
 public:
  explicit WaveMotion(MotionParams p) : p_(p) {}
  std::string label() const override { return "wave"; }
  Pose PoseAt(double t) const override {
    Pose pose = Pose::Standing();
    // Right arm raised, forearm oscillating left-right.
    const double s =
        std::sin(2.0 * M_PI * (t / p_.period + p_.phase)) * p_.amplitude;
    pose[kRightElbow] = {0.68, 0.16};
    pose[kRightWrist] = {0.70 + 0.10 * s, 0.02};
    return pose;
  }

 private:
  MotionParams p_;
};

class ClapMotion : public MotionModel {
 public:
  explicit ClapMotion(MotionParams p) : p_(p) {}
  std::string label() const override { return "clap"; }
  Pose PoseAt(double t) const override {
    Pose pose = Pose::Standing();
    const double u = Bump(CyclePos(t, p_)) * p_.amplitude;
    // Hands meet in front of the chest.
    pose[kLeftElbow] = {0.38 + 0.04 * u, 0.33 - 0.04 * u};
    pose[kRightElbow] = {0.62 - 0.04 * u, 0.33 - 0.04 * u};
    // Wrists meet exactly at the apex: the markers coincide and one
    // occludes the other (which the pose detector must tolerate).
    pose[kLeftWrist] = {0.34 + 0.16 * u, 0.50 - 0.22 * u};
    pose[kRightWrist] = {0.66 - 0.16 * u, 0.50 - 0.22 * u};
    return pose;
  }

 private:
  MotionParams p_;
};

class FallMotion : public MotionModel {
 public:
  explicit FallMotion(MotionParams p) : p_(p) {}
  std::string label() const override { return "fall"; }
  Pose PoseAt(double t) const override {
    // Stand for the first 40% of the period, fall over the next 30%,
    // then lie still.
    const Pose standing = Pose::Standing();
    Pose lying;
    // Rotate the standing pose ~90° around the ankles and flatten.
    for (int k = 0; k < kNumKeypoints; ++k) {
      const auto i = static_cast<size_t>(k);
      const double dx = standing.points[i].x - 0.5;
      const double dy = 0.96 - standing.points[i].y;  // height above feet
      // Slightly foreshortened so the fallen body stays in body space.
      lying.points[i] = {0.45 + dy * 0.6 + dx * 0.1, 0.93 - dx * 0.12};
    }
    const double t_fall_start = p_.period * 0.4;
    const double t_fall_end = p_.period * 0.7;
    if (t < t_fall_start) return standing;
    if (t >= t_fall_end) return lying;
    const double u = (t - t_fall_start) / (t_fall_end - t_fall_start);
    // Ease-in: a fall accelerates.
    return Lerp(standing, lying, u * u);
  }

 private:
  MotionParams p_;
};

}  // namespace

std::vector<std::string> KnownMotionLabels() {
  return {"idle", "squat", "jumping_jack", "lunge", "wave", "clap", "fall"};
}

Result<std::unique_ptr<MotionModel>> MakeMotion(const std::string& label,
                                                MotionParams params) {
  if (params.period <= 0.0) {
    return InvalidArgument("motion period must be positive");
  }
  std::unique_ptr<MotionModel> m;
  if (label == "idle") m = std::make_unique<IdleMotion>(params);
  else if (label == "squat") m = std::make_unique<SquatMotion>(params);
  else if (label == "jumping_jack") m = std::make_unique<JumpingJackMotion>(params);
  else if (label == "lunge") m = std::make_unique<LungeMotion>(params);
  else if (label == "wave") m = std::make_unique<WaveMotion>(params);
  else if (label == "clap") m = std::make_unique<ClapMotion>(params);
  else if (label == "fall") m = std::make_unique<FallMotion>(params);
  else return NotFound("unknown motion label '" + label + "'");
  return m;
}

Result<MotionScript> MotionScript::Make(std::vector<Segment> segments) {
  MotionScript script;
  double start = 0;
  for (Segment& seg : segments) {
    if (seg.duration <= 0) {
      return InvalidArgument("segment duration must be positive");
    }
    auto model = MakeMotion(seg.label, seg.params);
    if (!model.ok()) return model.error();
    auto entry = std::make_shared<Entry>();
    entry->segment = seg;
    entry->model = std::move(*model);
    entry->start = start;
    start += seg.duration;
    script.entries_.push_back(std::move(entry));
    script.segments_.push_back(std::move(seg));
  }
  script.total_ = start;
  return script;
}

Result<MotionScript> MotionScript::FromJson(const json::Value& doc) {
  if (!doc.is_array()) {
    return ParseError("workload must be a JSON array of segments");
  }
  std::vector<Segment> segments;
  for (const json::Value& item : doc.AsArray()) {
    if (!item.is_object()) {
      return ParseError("workload segments must be objects");
    }
    Segment segment;
    segment.label = item.GetString("motion");
    segment.duration = item.GetDouble("seconds", 5.0);
    segment.params.period = item.GetDouble("period", 2.0);
    segment.params.amplitude = item.GetDouble("amplitude", 1.0);
    segment.params.phase = item.GetDouble("phase", 0.0);
    segments.push_back(std::move(segment));
  }
  return Make(std::move(segments));
}

namespace {
const std::string kIdleLabel = "idle";
}

Pose MotionScript::PoseAt(double t) const {
  for (const auto& e : entries_) {
    if (t < e->start + e->segment.duration || e == entries_.back()) {
      if (t >= e->start || e == entries_.front()) {
        return e->model->PoseAt(std::max(0.0, t - e->start));
      }
    }
  }
  return Pose::Standing();
}

const std::string& MotionScript::LabelAt(double t) const {
  for (const auto& e : entries_) {
    if (t < e->start + e->segment.duration || e == entries_.back()) {
      if (t >= e->start || e == entries_.front()) {
        return e->segment.label;
      }
    }
  }
  return kIdleLabel;
}

int MotionScript::RepsUpTo(double t) const {
  int reps = 0;
  for (const auto& e : entries_) {
    if (t <= e->start) break;
    const double local = std::min(t - e->start, e->segment.duration);
    reps += e->model->RepsCompleted(local);
  }
  return reps;
}

}  // namespace vp::media
