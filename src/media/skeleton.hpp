// Human skeleton model — COCO 17-keypoint convention, the same layout
// the paper's 2D pose detector produces ("it detects 17 keypoints",
// §4.1.1).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "json/value.hpp"
#include "media/image.hpp"

namespace vp::media {

enum Keypoint : int {
  kNose = 0,
  kLeftEye, kRightEye,
  kLeftEar, kRightEar,
  kLeftShoulder, kRightShoulder,
  kLeftElbow, kRightElbow,
  kLeftWrist, kRightWrist,
  kLeftHip, kRightHip,
  kLeftKnee, kRightKnee,
  kLeftAnkle, kRightAnkle,
  kNumKeypoints  // 17
};

const char* KeypointName(int k);

/// Skeleton edges used for rendering and sanity checks.
const std::vector<std::pair<int, int>>& SkeletonBones();

/// Unique saturated render color per joint (the pose detector
/// recognizes joints by color signature — see DESIGN.md §2 on the CNN
/// substitution).
Rgb KeypointColor(int k);

struct Point2 {
  double x = 0;
  double y = 0;
};

/// A 2D body pose in *body space*: a unit square with (0.5, 0) at the
/// top of the head and y growing downward; the renderer maps body
/// space into the image.
struct Pose {
  std::array<Point2, kNumKeypoints> points{};
  std::array<bool, kNumKeypoints> visible{};

  Pose();

  Point2& operator[](int k) { return points[static_cast<size_t>(k)]; }
  const Point2& operator[](int k) const {
    return points[static_cast<size_t>(k)];
  }

  /// Midpoint of the hips — the normalization origin used by the
  /// activity classifier (§4.1.2).
  Point2 HipCenter() const;

  /// Shoulder-to-hip distance (scale normalizer).
  double TorsoLength() const;

  /// The canonical upright standing pose.
  static Pose Standing();

  /// Serialize to JSON: {"points": [[x,y],...], "visible": [...]}.
  json::Value ToJson() const;
  static Result<Pose> FromJson(const json::Value& v);
};

/// Linear interpolation between poses (per keypoint).
Pose Lerp(const Pose& a, const Pose& b, double t);

}  // namespace vp::media
