// PPM (P6) image I/O — the debug tap: dump any frame the pipeline saw
// to a file a human can open.
#pragma once

#include <string>

#include "common/error.hpp"
#include "media/image.hpp"

namespace vp::media {

/// Write `image` as a binary PPM (P6) file.
Status WritePpm(const Image& image, const std::string& path);

/// Read a binary PPM (P6) file (maxval must be 255).
Result<Image> ReadPpm(const std::string& path);

}  // namespace vp::media
