#include "media/image.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace vp::media {

int ColorDistance(Rgb a, Rgb b) {
  const int dr = std::abs(static_cast<int>(a.r) - static_cast<int>(b.r));
  const int dg = std::abs(static_cast<int>(a.g) - static_cast<int>(b.g));
  const int db = std::abs(static_cast<int>(a.b) - static_cast<int>(b.b));
  return std::max({dr, dg, db});
}

Image::Image(int width, int height, Rgb fill)
    : width_(width), height_(height),
      data_(static_cast<size_t>(width) * static_cast<size_t>(height) * 3) {
  Fill(fill);
}

void Image::Fill(Rgb c) {
  for (size_t i = 0; i + 2 < data_.size(); i += 3) {
    data_[i] = c.r;
    data_[i + 1] = c.g;
    data_[i + 2] = c.b;
  }
}

void Image::DrawDisk(int cx, int cy, double r, Rgb c) {
  const int ri = static_cast<int>(std::ceil(r));
  const double r2 = r * r;
  for (int dy = -ri; dy <= ri; ++dy) {
    for (int dx = -ri; dx <= ri; ++dx) {
      if (dx * dx + dy * dy <= r2) SetClipped(cx + dx, cy + dy, c);
    }
  }
}

void Image::DrawLine(int x0, int y0, int x1, int y1, double thickness,
                     Rgb c) {
  const double dx = x1 - x0;
  const double dy = y1 - y0;
  const double len = std::sqrt(dx * dx + dy * dy);
  const int steps = std::max(1, static_cast<int>(std::ceil(len * 2)));
  const double radius = thickness / 2.0;
  for (int i = 0; i <= steps; ++i) {
    const double t = static_cast<double>(i) / steps;
    DrawDisk(static_cast<int>(std::lround(x0 + t * dx)),
             static_cast<int>(std::lround(y0 + t * dy)), radius, c);
  }
}

void Image::DrawRect(int x0, int y0, int x1, int y1, Rgb c) {
  if (x0 > x1) std::swap(x0, x1);
  if (y0 > y1) std::swap(y0, y1);
  for (int x = x0; x <= x1; ++x) {
    SetClipped(x, y0, c);
    SetClipped(x, y1, c);
  }
  for (int y = y0; y <= y1; ++y) {
    SetClipped(x0, y, c);
    SetClipped(x1, y, c);
  }
}

Image Image::Downsample(int factor) const {
  if (factor <= 1) return *this;
  const int w = std::max(1, width_ / factor);
  const int h = std::max(1, height_ / factor);
  Image out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int sr = 0, sg = 0, sb = 0, n = 0;
      for (int dy = 0; dy < factor; ++dy) {
        for (int dx = 0; dx < factor; ++dx) {
          const int sx = x * factor + dx;
          const int sy = y * factor + dy;
          if (!InBounds(sx, sy)) continue;
          const Rgb c = At(sx, sy);
          sr += c.r;
          sg += c.g;
          sb += c.b;
          ++n;
        }
      }
      if (n == 0) n = 1;
      out.Set(x, y,
              Rgb{static_cast<uint8_t>(sr / n), static_cast<uint8_t>(sg / n),
                  static_cast<uint8_t>(sb / n)});
    }
  }
  return out;
}

double Image::MeanAbsDiff(const Image& other) const {
  if (width_ != other.width_ || height_ != other.height_) return 255.0;
  if (data_.empty()) return 0.0;
  uint64_t sum = 0;
  for (size_t i = 0; i < data_.size(); ++i) {
    sum += static_cast<uint64_t>(
        std::abs(static_cast<int>(data_[i]) - static_cast<int>(other.data_[i])));
  }
  return static_cast<double>(sum) / static_cast<double>(data_.size());
}

}  // namespace vp::media
