// Frame codec for network transfer.
//
// Lossy compression, JPEG-in-spirit: 16-level per-channel quantization
// (which swallows sensor noise) followed by run-length encoding over
// the quantized RGB triples. Synthetic indoor scenes compress to a few
// tens of kilobytes, giving inter-device frame transfers a realistic
// on-wire size. The codec is real code on real buffers — round-trip
// bounds are tested — and its CPU cost model (reference ms per
// megapixel) is charged by the runtime on the encoding/decoding
// device.
#pragma once

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/time.hpp"
#include "media/frame.hpp"

namespace vp::media {

/// Encode a frame (image + tiny header carrying seq/capture time).
Bytes EncodeFrame(const Frame& frame);

/// Decode; the returned frame has id 0 (ids are store-local and must
/// be re-assigned by the receiving FrameStore). Ground truth survives
/// the trip — it rides along as JSON for evaluation purposes.
Result<Frame> DecodeFrame(std::span<const uint8_t> data);

/// Cost model (reference milliseconds on the speed-1.0 device).
/// Calibrated to software JPEG-class codecs: ~6 ms to encode and
/// ~3 ms to decode a 640×480 frame at reference speed.
Duration EncodeCost(const Image& image);
Duration DecodeCost(size_t encoded_bytes);

}  // namespace vp::media
