// Per-device frame store: the paper's copy-avoidance mechanism.
//
// §3: "rather than copying the full image frames to the module, we
// pass on a reference id that identifies the frame." Each device
// runtime owns one FrameStore; modules and co-located services resolve
// ids against it in O(1) without copying pixels. Capacity is bounded;
// the oldest frames are evicted first (a live pipeline only ever needs
// a handful of frames in flight).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "common/error.hpp"
#include "media/frame.hpp"

namespace vp::media {

class FrameStore {
 public:
  /// `capacity` = max resident frames; evicts oldest on overflow.
  explicit FrameStore(size_t capacity = 64) : capacity_(capacity) {}

  /// Register a frame, assigning it a fresh id (ignores frame->id).
  /// Returns the new id. `encoded` optionally caches the frame's wire
  /// encoding so later transfers skip re-encoding (real systems reuse
  /// the camera JPEG; the baseline benefits from this too).
  FrameId Put(Frame frame, Bytes encoded = {});

  /// Resolve an id. Errors with kNotFound when absent/evicted.
  Result<FramePtr> Get(FrameId id) const;

  /// Cached wire encoding; nullptr when none was stored.
  std::shared_ptr<const Bytes> Encoded(FrameId id) const;

  /// Attach a wire encoding after the fact.
  void CacheEncoded(FrameId id, Bytes encoded);

  /// Drop a frame explicitly (sinks call this when done). Lazily
  /// compacts the eviction bookkeeping so Put/Release churn keeps
  /// memory bounded by the live frames.
  bool Release(FrameId id);

  /// Drop everything — the store's RAM died with its device. Resident
  /// frames count as evictions; ids are NOT reused (next_id_ keeps
  /// advancing), so stale references fail with kNotFound, never alias.
  void Clear() {
    evictions_ += frames_.size();
    frames_.clear();
    order_.clear();
  }

  size_t size() const { return frames_.size(); }
  size_t capacity() const { return capacity_; }
  /// Length of the eviction-order bookkeeping (live + not-yet-reaped
  /// released ids). Bounded at max(capacity, 2·size): Release compacts
  /// lazily, so churn cannot grow this without bound.
  size_t order_size() const { return order_.size(); }
  uint64_t evictions() const { return evictions_; }
  uint64_t puts() const { return puts_; }

  /// Total pixel bytes currently resident.
  size_t resident_bytes() const;

 private:
  struct Entry {
    FramePtr frame;
    std::shared_ptr<const Bytes> encoded;  // optional wire-format cache
  };
  /// Drop released ids from order_ (rebuild keeping live ids only).
  void Compact();

  size_t capacity_;
  FrameId next_id_ = 1;
  std::unordered_map<FrameId, Entry> frames_;
  std::deque<FrameId> order_;  // insertion order for eviction
  uint64_t evictions_ = 0;
  uint64_t puts_ = 0;
};

}  // namespace vp::media
