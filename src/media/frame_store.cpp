#include "media/frame_store.hpp"

namespace vp::media {

FrameId FrameStore::Put(Frame frame, Bytes encoded) {
  const FrameId id = next_id_++;
  frame.id = id;
  Entry entry;
  entry.frame = std::make_shared<const Frame>(std::move(frame));
  if (!encoded.empty()) {
    entry.encoded = std::make_shared<const Bytes>(std::move(encoded));
  }
  frames_[id] = std::move(entry);
  order_.push_back(id);
  ++puts_;
  while (frames_.size() > capacity_ && !order_.empty()) {
    const FrameId victim = order_.front();
    order_.pop_front();
    if (frames_.erase(victim) > 0) ++evictions_;
  }
  return id;
}

Result<FramePtr> FrameStore::Get(FrameId id) const {
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    return NotFound("frame " + std::to_string(id) + " not in store");
  }
  return it->second.frame;
}

std::shared_ptr<const Bytes> FrameStore::Encoded(FrameId id) const {
  auto it = frames_.find(id);
  return it == frames_.end() ? nullptr : it->second.encoded;
}

void FrameStore::CacheEncoded(FrameId id, Bytes encoded) {
  auto it = frames_.find(id);
  if (it == frames_.end()) return;
  it->second.encoded = std::make_shared<const Bytes>(std::move(encoded));
}

bool FrameStore::Release(FrameId id) { return frames_.erase(id) > 0; }

size_t FrameStore::resident_bytes() const {
  size_t total = 0;
  for (const auto& [id, entry] : frames_) {
    total += entry.frame->image.byte_size();
  }
  return total;
}

}  // namespace vp::media
