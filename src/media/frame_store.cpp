#include "media/frame_store.hpp"

namespace vp::media {

FrameId FrameStore::Put(Frame frame, Bytes encoded) {
  const FrameId id = next_id_++;
  frame.id = id;
  Entry entry;
  entry.frame = std::make_shared<const Frame>(std::move(frame));
  if (!encoded.empty()) {
    entry.encoded = std::make_shared<const Bytes>(std::move(encoded));
  }
  frames_[id] = std::move(entry);
  order_.push_back(id);
  ++puts_;
  while (frames_.size() > capacity_ && !order_.empty()) {
    const FrameId victim = order_.front();
    order_.pop_front();
    if (frames_.erase(victim) > 0) ++evictions_;
  }
  return id;
}

Result<FramePtr> FrameStore::Get(FrameId id) const {
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    return NotFound("frame " + std::to_string(id) + " not in store");
  }
  return it->second.frame;
}

std::shared_ptr<const Bytes> FrameStore::Encoded(FrameId id) const {
  auto it = frames_.find(id);
  return it == frames_.end() ? nullptr : it->second.encoded;
}

void FrameStore::CacheEncoded(FrameId id, Bytes encoded) {
  auto it = frames_.find(id);
  if (it == frames_.end()) return;
  it->second.encoded = std::make_shared<const Bytes>(std::move(encoded));
}

bool FrameStore::Release(FrameId id) {
  const bool erased = frames_.erase(id) > 0;
  // Released ids stay in order_ until eviction would reach them; under
  // heavy Put/Release churn that deque would grow without bound. Amortized
  // O(1) compaction: once the dead entries outnumber the live ones (and
  // we are past `capacity_`), rebuild order_ from the live ids only.
  if (erased && order_.size() > capacity_ &&
      order_.size() > 2 * frames_.size()) {
    Compact();
  }
  return erased;
}

void FrameStore::Compact() {
  std::deque<FrameId> live;
  for (FrameId id : order_) {
    if (frames_.count(id) > 0) live.push_back(id);
  }
  order_ = std::move(live);
}

size_t FrameStore::resident_bytes() const {
  size_t total = 0;
  for (const auto& [id, entry] : frames_) {
    total += entry.frame->image.byte_size();
  }
  return total;
}

}  // namespace vp::media
