// Raster images.
//
// Interleaved 8-bit RGB. Small by modern standards (the synthetic
// camera defaults to 160×120) but fully real: the CV services operate
// on these pixel buffers, and the codec compresses them for network
// transfer.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace vp::media {

struct Rgb {
  uint8_t r = 0, g = 0, b = 0;
  bool operator==(const Rgb&) const = default;
};

/// Chebyshev (max-channel) distance between two colors.
int ColorDistance(Rgb a, Rgb b);

class Image {
 public:
  Image() = default;
  Image(int width, int height, Rgb fill = Rgb{0, 0, 0});

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return data_.empty(); }
  size_t byte_size() const { return data_.size(); }

  bool InBounds(int x, int y) const {
    return x >= 0 && y >= 0 && x < width_ && y < height_;
  }

  Rgb At(int x, int y) const {
    const size_t i = Index(x, y);
    return Rgb{data_[i], data_[i + 1], data_[i + 2]};
  }

  void Set(int x, int y, Rgb c) {
    const size_t i = Index(x, y);
    data_[i] = c.r;
    data_[i + 1] = c.g;
    data_[i + 2] = c.b;
  }

  /// Set with bounds check (no-op when outside).
  void SetClipped(int x, int y, Rgb c) {
    if (InBounds(x, y)) Set(x, y, c);
  }

  void Fill(Rgb c);

  /// Filled disk of radius r at (cx, cy), clipped to bounds.
  void DrawDisk(int cx, int cy, double r, Rgb c);

  /// Line from (x0,y0) to (x1,y1) with the given thickness, clipped.
  void DrawLine(int x0, int y0, int x1, int y1, double thickness, Rgb c);

  /// Axis-aligned rectangle outline.
  void DrawRect(int x0, int y0, int x1, int y1, Rgb c);

  /// Downsample by integer factor (box filter) — used by the image
  /// classifier service.
  Image Downsample(int factor) const;

  /// Mean per-channel absolute difference against another image of the
  /// same dimensions (returns 255 on dimension mismatch).
  double MeanAbsDiff(const Image& other) const;

  const std::vector<uint8_t>& data() const { return data_; }
  std::vector<uint8_t>& data() { return data_; }

 private:
  size_t Index(int x, int y) const {
    return 3 * (static_cast<size_t>(y) * static_cast<size_t>(width_) +
                static_cast<size_t>(x));
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<uint8_t> data_;
};

}  // namespace vp::media
