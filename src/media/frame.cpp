#include "media/frame.hpp"

// Frame is a plain aggregate; this translation unit exists so the
// header has a home in the library and future non-inline helpers have
// a place to land.
