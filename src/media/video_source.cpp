#include "media/video_source.hpp"

#include <cmath>

namespace vp::media {

SyntheticVideoSource::SyntheticVideoSource(MotionScript script, double fps,
                                           SceneOptions scene, uint64_t seed)
    : script_(std::move(script)), fps_(fps), scene_(scene), seed_(seed) {}

uint64_t SyntheticVideoSource::frame_count() const {
  return static_cast<uint64_t>(std::floor(script_.total_duration() * fps_));
}

Frame SyntheticVideoSource::CaptureFrame(uint64_t seq) const {
  const double t = static_cast<double>(seq) / fps_;
  Pose pose = script_.PoseAt(t);

  // Pose jitter: small per-joint tremor, deterministic per (seed, seq).
  Rng rng(seed_ * 0x9E3779B97F4A7C15ULL + seq);
  for (auto& pt : pose.points) {
    pt.x += rng.NextGaussian(0.0, 0.003);
    pt.y += rng.NextGaussian(0.0, 0.003);
  }

  Frame frame;
  frame.seq = seq;
  frame.capture_time = CaptureTime(seq);
  frame.image = RenderScene(pose, scene_, seed_ ^ (seq * 1000003ULL));

  json::Value gt = json::Value::MakeObject();
  gt["activity"] = json::Value(script_.LabelAt(t));
  gt["reps"] = json::Value(script_.RepsUpTo(t));
  gt["t"] = json::Value(t);
  // True pose in pixel space for detector-accuracy checks.
  json::Value::Array px;
  for (int k = 0; k < kNumKeypoints; ++k) {
    const Point2 p = BodyToPixel(pose[k], scene_);
    json::Value::Array pt;
    pt.push_back(json::Value(p.x));
    pt.push_back(json::Value(p.y));
    px.push_back(json::Value(std::move(pt)));
  }
  gt["pose_px"] = json::Value(std::move(px));
  frame.ground_truth = std::move(gt);
  return frame;
}

MotionScript DefaultWorkoutScript() {
  MotionParams squat;
  squat.period = 2.4;
  MotionParams jack;
  jack.period = 1.4;
  MotionParams lunge;
  lunge.period = 2.8;
  auto script = MotionScript::Make({
      {"idle", 3.0, {}},
      {"squat", 12.0, squat},
      {"idle", 2.0, {}},
      {"jumping_jack", 8.4, jack},
      {"idle", 2.0, {}},
      {"lunge", 11.2, lunge},
      {"idle", 3.0, {}},
  });
  // Labels above are all known; Make cannot fail.
  return std::move(*script);
}

MotionScript DefaultGestureScript() {
  MotionParams wave;
  wave.period = 1.2;
  MotionParams clap;
  clap.period = 1.0;
  auto script = MotionScript::Make({
      {"idle", 3.0, {}},
      {"wave", 4.8, wave},
      {"idle", 3.0, {}},
      {"clap", 4.0, clap},
      {"idle", 3.0, {}},
  });
  return std::move(*script);
}

}  // namespace vp::media
