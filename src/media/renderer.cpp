#include "media/renderer.hpp"

#include <algorithm>
#include <cmath>

namespace vp::media {

Point2 BodyToPixel(const Point2& body_point, const SceneOptions& options) {
  const double person_px_h = options.person_height * options.height;
  const double person_px_w = person_px_h * 0.6;
  const double foot_y = options.person_foot_y * options.height;
  const double top_y = foot_y - person_px_h;
  const double center_x = options.person_center_x * options.width;
  return Point2{center_x + (body_point.x - 0.5) * person_px_w,
                top_y + body_point.y * person_px_h};
}

Image RenderScene(const Pose& pose, const SceneOptions& options,
                  uint64_t frame_seed) {
  Image image(options.width, options.height, options.background);
  Rng rng(frame_seed ^ 0xC0FFEE123456789ULL);

  // Props (furniture / IoT devices) behind the person.
  for (const Prop& prop : options.props) {
    const int x0 = static_cast<int>(prop.x * options.width);
    const int y0 = static_cast<int>(prop.y * options.height);
    const int x1 = static_cast<int>((prop.x + prop.w) * options.width);
    const int y1 = static_cast<int>((prop.y + prop.h) * options.height);
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        image.SetClipped(x, y, prop.color);
      }
    }
  }

  // Bones.
  const Rgb bone_color{90, 90, 96};
  for (const auto& [a, b] : SkeletonBones()) {
    if (!pose.visible[static_cast<size_t>(a)] ||
        !pose.visible[static_cast<size_t>(b)]) {
      continue;
    }
    const Point2 pa = BodyToPixel(pose[a], options);
    const Point2 pb = BodyToPixel(pose[b], options);
    image.DrawLine(static_cast<int>(std::lround(pa.x)),
                   static_cast<int>(std::lround(pa.y)),
                   static_cast<int>(std::lround(pb.x)),
                   static_cast<int>(std::lround(pb.y)),
                   options.bone_thickness, bone_color);
  }

  // Joint markers (drawn over bones; overlapping joints occlude each
  // other — the later-drawn joint wins, which is what makes e.g. a
  // clap hide a wrist from the detector).
  for (int k = 0; k < kNumKeypoints; ++k) {
    if (!pose.visible[static_cast<size_t>(k)]) continue;
    const Point2 p = BodyToPixel(pose[k], options);
    image.DrawDisk(static_cast<int>(std::lround(p.x)),
                   static_cast<int>(std::lround(p.y)), options.joint_radius,
                   KeypointColor(k));
  }

  // Sensor noise.
  if (options.noise_stddev > 0) {
    auto& data = image.data();
    for (auto& channel : data) {
      const double noisy =
          channel + rng.NextGaussian(0.0, options.noise_stddev);
      channel = static_cast<uint8_t>(std::clamp(noisy, 0.0, 255.0));
    }
  }
  return image;
}

}  // namespace vp::media
