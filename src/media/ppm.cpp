#include "media/ppm.hpp"

#include <cstdio>
#include <fstream>

namespace vp::media {

Status WritePpm(const Image& image, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return Status(StatusCode::kNotFound, "cannot open " + path);
  }
  file << "P6\n" << image.width() << " " << image.height() << "\n255\n";
  file.write(reinterpret_cast<const char*>(image.data().data()),
             static_cast<std::streamsize>(image.data().size()));
  if (!file) {
    return Status(StatusCode::kInternal, "short write to " + path);
  }
  return Status::Ok();
}

Result<Image> ReadPpm(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return NotFound("cannot open " + path);

  std::string magic;
  int width = 0;
  int height = 0;
  int maxval = 0;
  file >> magic;
  if (magic != "P6") return ParseError(path + ": not a P6 PPM");
  // Skip comments between header tokens.
  auto next_int = [&](int& out) -> bool {
    while (file >> std::ws && file.peek() == '#') {
      std::string comment;
      std::getline(file, comment);
    }
    return static_cast<bool>(file >> out);
  };
  if (!next_int(width) || !next_int(height) || !next_int(maxval)) {
    return ParseError(path + ": malformed PPM header");
  }
  if (maxval != 255 || width <= 0 || height <= 0 || width > 1 << 14 ||
      height > 1 << 14) {
    return ParseError(path + ": unsupported PPM parameters");
  }
  file.get();  // single whitespace after maxval

  Image image(width, height);
  file.read(reinterpret_cast<char*>(image.data().data()),
            static_cast<std::streamsize>(image.data().size()));
  if (file.gcount() != static_cast<std::streamsize>(image.data().size())) {
    return ParseError(path + ": truncated pixel data");
  }
  return image;
}

}  // namespace vp::media
