// Parametric human motion models.
//
// These replace the paper's live camera feed of a person exercising in
// a living room. Each model is a deterministic, smooth function
// t → Pose, with exact ground truth (activity label, completed rep
// count) available for the accuracy experiments (§4.1.2–4.1.3). Noise
// is added downstream by the synthetic video source, not here.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "json/value.hpp"
#include "media/skeleton.hpp"

namespace vp::media {

struct MotionParams {
  /// Seconds per full exercise cycle (one rep).
  double period = 2.0;
  /// Motion amplitude multiplier (person-to-person variation).
  double amplitude = 1.0;
  /// Phase offset in [0,1) cycles.
  double phase = 0.0;
};

class MotionModel {
 public:
  virtual ~MotionModel() = default;

  /// Activity label, e.g. "squat", "wave".
  virtual std::string label() const = 0;

  /// Body pose at time t (seconds).
  virtual Pose PoseAt(double t) const = 0;

  /// Ground-truth completed repetitions at time t (0 for non-exercise
  /// motions).
  virtual int RepsCompleted(double t) const { return 0; }
};

/// Labels understood by MakeMotion.
std::vector<std::string> KnownMotionLabels();

/// Factory: "idle", "squat", "jumping_jack", "lunge", "wave", "clap",
/// "fall".
Result<std::unique_ptr<MotionModel>> MakeMotion(const std::string& label,
                                                MotionParams params = {});

/// A timeline of motions: the workout script a synthetic user follows.
class MotionScript {
 public:
  struct Segment {
    std::string label;
    double duration = 5.0;
    MotionParams params;
  };

  /// Build from segments; errors on unknown labels.
  static Result<MotionScript> Make(std::vector<Segment> segments);

  /// Build from a JSON array of segments:
  ///   [ {"motion": "squat", "seconds": 12, "period": 2.4,
  ///      "amplitude": 1.0, "phase": 0.0}, … ]
  /// (period/amplitude/phase optional).
  static Result<MotionScript> FromJson(const json::Value& doc);

  double total_duration() const { return total_; }

  Pose PoseAt(double t) const;
  const std::string& LabelAt(double t) const;

  /// Total ground-truth reps completed up to time t (across segments).
  int RepsUpTo(double t) const;

  const std::vector<Segment>& segments() const { return segments_; }

 private:
  struct Entry {
    Segment segment;
    std::unique_ptr<MotionModel> model;
    double start = 0;
  };
  std::vector<Segment> segments_;
  std::vector<std::shared_ptr<Entry>> entries_;  // shared: script is copyable
  double total_ = 0;
};

}  // namespace vp::media
