#include "media/skeleton.hpp"

#include <cmath>

namespace vp::media {

const char* KeypointName(int k) {
  switch (k) {
    case kNose: return "nose";
    case kLeftEye: return "left_eye";
    case kRightEye: return "right_eye";
    case kLeftEar: return "left_ear";
    case kRightEar: return "right_ear";
    case kLeftShoulder: return "left_shoulder";
    case kRightShoulder: return "right_shoulder";
    case kLeftElbow: return "left_elbow";
    case kRightElbow: return "right_elbow";
    case kLeftWrist: return "left_wrist";
    case kRightWrist: return "right_wrist";
    case kLeftHip: return "left_hip";
    case kRightHip: return "right_hip";
    case kLeftKnee: return "left_knee";
    case kRightKnee: return "right_knee";
    case kLeftAnkle: return "left_ankle";
    case kRightAnkle: return "right_ankle";
    default: return "?";
  }
}

const std::vector<std::pair<int, int>>& SkeletonBones() {
  static const std::vector<std::pair<int, int>> bones = {
      {kNose, kLeftEye},           {kNose, kRightEye},
      {kLeftEye, kLeftEar},        {kRightEye, kRightEar},
      {kLeftShoulder, kRightShoulder},
      {kLeftShoulder, kLeftElbow}, {kLeftElbow, kLeftWrist},
      {kRightShoulder, kRightElbow}, {kRightElbow, kRightWrist},
      {kLeftShoulder, kLeftHip},   {kRightShoulder, kRightHip},
      {kLeftHip, kRightHip},
      {kLeftHip, kLeftKnee},       {kLeftKnee, kLeftAnkle},
      {kRightHip, kRightKnee},     {kRightKnee, kRightAnkle},
  };
  return bones;
}

Rgb KeypointColor(int k) {
  // Saturated, mutually distant colors (pairwise Chebyshev distance
  // ≥ 60) so joint blobs survive sensor noise without colliding with
  // the dark background or gray bones.
  static const Rgb palette[kNumKeypoints] = {
      {255, 64, 64},    // nose
      {255, 160, 64},   // left_eye
      {255, 255, 64},   // right_eye
      {160, 255, 64},   // left_ear
      {64, 255, 64},    // right_ear
      {64, 255, 160},   // left_shoulder
      {64, 255, 255},   // right_shoulder
      {64, 160, 255},   // left_elbow
      {64, 64, 255},    // right_elbow
      {160, 64, 255},   // left_wrist
      {255, 64, 255},   // right_wrist
      {255, 64, 160},   // left_hip
      {255, 255, 255},  // right_hip
      {255, 128, 128},  // left_knee
      {128, 255, 128},  // right_knee
      {128, 128, 255},  // left_ankle
      {255, 224, 160},  // right_ankle
  };
  return palette[k];
}

Pose::Pose() {
  visible.fill(true);
}

Point2 Pose::HipCenter() const {
  const Point2& l = points[kLeftHip];
  const Point2& r = points[kRightHip];
  return Point2{(l.x + r.x) / 2.0, (l.y + r.y) / 2.0};
}

double Pose::TorsoLength() const {
  const Point2 shoulders{
      (points[kLeftShoulder].x + points[kRightShoulder].x) / 2.0,
      (points[kLeftShoulder].y + points[kRightShoulder].y) / 2.0};
  const Point2 hips = HipCenter();
  const double dx = shoulders.x - hips.x;
  const double dy = shoulders.y - hips.y;
  return std::sqrt(dx * dx + dy * dy);
}

Pose Pose::Standing() {
  Pose p;
  // Body space: x in [0,1], y in [0,1], y grows downward.
  p[kNose] = {0.50, 0.06};
  p[kLeftEye] = {0.47, 0.045};
  p[kRightEye] = {0.53, 0.045};
  p[kLeftEar] = {0.44, 0.055};
  p[kRightEar] = {0.56, 0.055};
  p[kLeftShoulder] = {0.40, 0.20};
  p[kRightShoulder] = {0.60, 0.20};
  p[kLeftElbow] = {0.36, 0.35};
  p[kRightElbow] = {0.64, 0.35};
  p[kLeftWrist] = {0.34, 0.50};
  p[kRightWrist] = {0.66, 0.50};
  p[kLeftHip] = {0.44, 0.52};
  p[kRightHip] = {0.56, 0.52};
  p[kLeftKnee] = {0.43, 0.74};
  p[kRightKnee] = {0.57, 0.74};
  p[kLeftAnkle] = {0.43, 0.96};
  p[kRightAnkle] = {0.57, 0.96};
  return p;
}

json::Value Pose::ToJson() const {
  json::Value::Array pts;
  json::Value::Array vis;
  for (int k = 0; k < kNumKeypoints; ++k) {
    json::Value::Array pt;
    pt.push_back(json::Value(points[static_cast<size_t>(k)].x));
    pt.push_back(json::Value(points[static_cast<size_t>(k)].y));
    pts.push_back(json::Value(std::move(pt)));
    vis.push_back(json::Value(visible[static_cast<size_t>(k)]));
  }
  json::Value out = json::Value::MakeObject();
  out["points"] = json::Value(std::move(pts));
  out["visible"] = json::Value(std::move(vis));
  return out;
}

Result<Pose> Pose::FromJson(const json::Value& v) {
  const json::Value* pts = v.Find("points");
  if (pts == nullptr || !pts->is_array() ||
      pts->AsArray().size() != kNumKeypoints) {
    return ParseError("pose: expected 17 'points'");
  }
  Pose p;
  for (int k = 0; k < kNumKeypoints; ++k) {
    const json::Value& pt = pts->AsArray()[static_cast<size_t>(k)];
    if (!pt.is_array() || pt.AsArray().size() != 2) {
      return ParseError("pose: bad point");
    }
    p[k] = {pt[0].AsDouble(), pt[1].AsDouble()};
  }
  if (const json::Value* vis = v.Find("visible");
      vis != nullptr && vis->is_array() &&
      vis->AsArray().size() == kNumKeypoints) {
    for (int k = 0; k < kNumKeypoints; ++k) {
      p.visible[static_cast<size_t>(k)] =
          vis->AsArray()[static_cast<size_t>(k)].is_bool()
              ? vis->AsArray()[static_cast<size_t>(k)].AsBool()
              : true;
    }
  }
  return p;
}

Pose Lerp(const Pose& a, const Pose& b, double t) {
  Pose out;
  for (int k = 0; k < kNumKeypoints; ++k) {
    const auto i = static_cast<size_t>(k);
    out.points[i].x = a.points[i].x + (b.points[i].x - a.points[i].x) * t;
    out.points[i].y = a.points[i].y + (b.points[i].y - a.points[i].y) * t;
    out.visible[i] = a.visible[i] && b.visible[i];
  }
  return out;
}

}  // namespace vp::media
