#include "script/parser.hpp"

#include <cassert>

#include "common/strings.hpp"
#include "script/lexer.hpp"

namespace vp::script {
namespace {

/// Token → dense opcode (see ast.hpp). kNone for non-operator tokens.
OpCode TokenOpCode(TokenType t) {
  switch (t) {
    case TokenType::kPlus: return OpCode::kAdd;
    case TokenType::kMinus: return OpCode::kSub;
    case TokenType::kStar: return OpCode::kMul;
    case TokenType::kSlash: return OpCode::kDiv;
    case TokenType::kPercent: return OpCode::kMod;
    case TokenType::kEq: return OpCode::kEq;
    case TokenType::kNe: return OpCode::kNe;
    case TokenType::kStrictEq: return OpCode::kStrictEq;
    case TokenType::kStrictNe: return OpCode::kStrictNe;
    case TokenType::kLt: return OpCode::kLt;
    case TokenType::kLe: return OpCode::kLe;
    case TokenType::kGt: return OpCode::kGt;
    case TokenType::kGe: return OpCode::kGe;
    case TokenType::kAndAnd: return OpCode::kAndAnd;
    case TokenType::kOrOr: return OpCode::kOrOr;
    case TokenType::kNot: return OpCode::kNot;
    case TokenType::kTypeof: return OpCode::kTypeof;
    case TokenType::kPlusPlus: return OpCode::kInc;
    case TokenType::kMinusMinus: return OpCode::kDec;
    // Compound assignments carry the opcode of their binary part.
    case TokenType::kPlusAssign: return OpCode::kAdd;
    case TokenType::kMinusAssign: return OpCode::kSub;
    case TokenType::kStarAssign: return OpCode::kMul;
    case TokenType::kSlashAssign: return OpCode::kDiv;
    case TokenType::kPercentAssign: return OpCode::kMod;
    default: return OpCode::kNone;
  }
}

/// Binary operator precedence (higher binds tighter).
int Precedence(TokenType t) {
  switch (t) {
    case TokenType::kOrOr: return 1;
    case TokenType::kAndAnd: return 2;
    case TokenType::kEq:
    case TokenType::kNe:
    case TokenType::kStrictEq:
    case TokenType::kStrictNe: return 3;
    case TokenType::kLt:
    case TokenType::kLe:
    case TokenType::kGt:
    case TokenType::kGe: return 4;
    case TokenType::kPlus:
    case TokenType::kMinus: return 5;
    case TokenType::kStar:
    case TokenType::kSlash:
    case TokenType::kPercent: return 6;
    default: return 0;
  }
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::shared_ptr<Program>> Run() {
    auto program = std::make_shared<Program>();
    while (!Check(TokenType::kEof)) {
      auto stmt = ParseStatement();
      if (!stmt.ok()) return stmt.error();
      program->statements.push_back(std::move(*stmt));
    }
    return program;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenType t) const { return Peek().type == t; }
  bool Match(TokenType t) {
    if (Check(t)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Error Fail(const std::string& what) const {
    const Token& t = Peek();
    return ParseError(Format("script:%d:%d: %s (got '%s')", t.line, t.column,
                             what.c_str(), TokenTypeName(t.type)));
  }

  Status Expect(TokenType t, const char* context) {
    if (!Match(t)) {
      return Status(StatusCode::kParseError,
                    Fail(Format("expected '%s' %s", TokenTypeName(t), context))
                        .message());
    }
    return Status::Ok();
  }

  // ------------------------------------------------------- statements

  Result<StmtPtr> ParseStatement() {
    switch (Peek().type) {
      case TokenType::kVar:
      case TokenType::kLet:
      case TokenType::kConst: return ParseVarDecl();
      case TokenType::kFunction: return ParseFunctionDecl();
      case TokenType::kReturn: return ParseReturn();
      case TokenType::kIf: return ParseIf();
      case TokenType::kWhile: return ParseWhile();
      case TokenType::kDo: return ParseDoWhile();
      case TokenType::kFor: return ParseFor();
      case TokenType::kTry: return ParseTry();
      case TokenType::kThrow: return ParseThrow();
      case TokenType::kSwitch: return ParseSwitch();
      case TokenType::kLBrace: return ParseBlockStatement();
      case TokenType::kBreak: {
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = StmtKind::kBreak;
        stmt->line = Advance().line;
        Match(TokenType::kSemicolon);
        return stmt;
      }
      case TokenType::kContinue: {
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = StmtKind::kContinue;
        stmt->line = Advance().line;
        Match(TokenType::kSemicolon);
        return stmt;
      }
      case TokenType::kSemicolon: {
        Advance();
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = StmtKind::kBlock;  // empty statement
        return stmt;
      }
      default: return ParseExprStatement();
    }
  }

  Result<StmtPtr> ParseVarDecl() {
    const Token& kw = Advance();  // var/let/const
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kVarDecl;
    stmt->line = kw.line;
    stmt->is_const = kw.type == TokenType::kConst;
    if (!Check(TokenType::kIdentifier)) return Fail("expected variable name");
    stmt->name = Advance().text;
    if (Match(TokenType::kAssign)) {
      auto init = ParseExpression();
      if (!init.ok()) return init.error();
      stmt->expr = std::move(*init);
    } else if (stmt->is_const) {
      return Fail("const declaration requires an initializer");
    }
    Match(TokenType::kSemicolon);
    return stmt;
  }

  Result<StmtPtr> ParseFunctionDecl() {
    const Token& kw = Advance();  // function
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kFunction;
    stmt->line = kw.line;
    if (!Check(TokenType::kIdentifier)) return Fail("expected function name");
    stmt->name = Advance().text;
    auto params = ParseParamList();
    if (!params.ok()) return params.error();
    stmt->params = std::move(*params);
    auto body = ParseBlock();
    if (!body.ok()) return body.error();
    stmt->body = std::move(*body);
    return stmt;
  }

  Result<std::vector<std::string>> ParseParamList() {
    VP_RETURN_IF_ERROR_R(Expect(TokenType::kLParen, "before parameters"));
    std::vector<std::string> params;
    if (!Check(TokenType::kRParen)) {
      while (true) {
        if (!Check(TokenType::kIdentifier)) {
          return Fail("expected parameter name");
        }
        params.push_back(Advance().text);
        if (!Match(TokenType::kComma)) break;
      }
    }
    VP_RETURN_IF_ERROR_R(Expect(TokenType::kRParen, "after parameters"));
    return params;
  }

  Result<std::vector<StmtPtr>> ParseBlock() {
    VP_RETURN_IF_ERROR_R(Expect(TokenType::kLBrace, "to open block"));
    std::vector<StmtPtr> body;
    while (!Check(TokenType::kRBrace) && !Check(TokenType::kEof)) {
      auto stmt = ParseStatement();
      if (!stmt.ok()) return stmt.error();
      body.push_back(std::move(*stmt));
    }
    VP_RETURN_IF_ERROR_R(Expect(TokenType::kRBrace, "to close block"));
    return body;
  }

  Result<StmtPtr> ParseBlockStatement() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kBlock;
    stmt->line = Peek().line;
    auto body = ParseBlock();
    if (!body.ok()) return body.error();
    stmt->body = std::move(*body);
    return stmt;
  }

  Result<StmtPtr> ParseReturn() {
    const Token& kw = Advance();
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kReturn;
    stmt->line = kw.line;
    if (!Check(TokenType::kSemicolon) && !Check(TokenType::kRBrace)) {
      auto value = ParseExpression();
      if (!value.ok()) return value.error();
      stmt->expr = std::move(*value);
    }
    Match(TokenType::kSemicolon);
    return stmt;
  }

  Result<StmtPtr> ParseIf() {
    const Token& kw = Advance();
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kIf;
    stmt->line = kw.line;
    VP_RETURN_IF_ERROR_R(Expect(TokenType::kLParen, "after 'if'"));
    auto cond = ParseExpression();
    if (!cond.ok()) return cond.error();
    stmt->expr = std::move(*cond);
    VP_RETURN_IF_ERROR_R(Expect(TokenType::kRParen, "after condition"));
    auto then_branch = ParseBranch();
    if (!then_branch.ok()) return then_branch.error();
    stmt->then_branch = std::move(*then_branch);
    if (Match(TokenType::kElse)) {
      auto else_branch = ParseBranch();
      if (!else_branch.ok()) return else_branch.error();
      stmt->else_branch = std::move(*else_branch);
    }
    return stmt;
  }

  /// A branch is either a block or a single statement.
  Result<std::vector<StmtPtr>> ParseBranch() {
    if (Check(TokenType::kLBrace)) return ParseBlock();
    std::vector<StmtPtr> body;
    auto stmt = ParseStatement();
    if (!stmt.ok()) return stmt.error();
    body.push_back(std::move(*stmt));
    return body;
  }

  Result<StmtPtr> ParseWhile() {
    const Token& kw = Advance();
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kWhile;
    stmt->line = kw.line;
    VP_RETURN_IF_ERROR_R(Expect(TokenType::kLParen, "after 'while'"));
    auto cond = ParseExpression();
    if (!cond.ok()) return cond.error();
    stmt->expr = std::move(*cond);
    VP_RETURN_IF_ERROR_R(Expect(TokenType::kRParen, "after condition"));
    auto body = ParseBranch();
    if (!body.ok()) return body.error();
    stmt->body = std::move(*body);
    return stmt;
  }

  Result<StmtPtr> ParseFor() {
    const Token& kw = Advance();
    VP_RETURN_IF_ERROR_R(Expect(TokenType::kLParen, "after 'for'"));

    // for (var k in obj) — lookahead for the in-form.
    if ((Check(TokenType::kVar) || Check(TokenType::kLet)) &&
        Peek(1).type == TokenType::kIdentifier &&
        Peek(2).type == TokenType::kIn) {
      Advance();  // var/let
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kForIn;
      stmt->line = kw.line;
      stmt->name = Advance().text;
      Advance();  // in
      auto obj = ParseExpression();
      if (!obj.ok()) return obj.error();
      stmt->expr = std::move(*obj);
      VP_RETURN_IF_ERROR_R(Expect(TokenType::kRParen, "after for-in"));
      auto body = ParseBranch();
      if (!body.ok()) return body.error();
      stmt->body = std::move(*body);
      return stmt;
    }

    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kFor;
    stmt->line = kw.line;
    // init
    if (!Check(TokenType::kSemicolon)) {
      auto init = Check(TokenType::kVar) || Check(TokenType::kLet)
                      ? ParseVarDecl()
                      : ParseExprStatement();
      if (!init.ok()) return init.error();
      stmt->init = std::move(*init);
    } else {
      Advance();
    }
    // condition
    if (!Check(TokenType::kSemicolon)) {
      auto cond = ParseExpression();
      if (!cond.ok()) return cond.error();
      stmt->condition = std::move(*cond);
    }
    VP_RETURN_IF_ERROR_R(Expect(TokenType::kSemicolon, "after for condition"));
    // step
    if (!Check(TokenType::kRParen)) {
      auto step = ParseExpression();
      if (!step.ok()) return step.error();
      stmt->step = std::move(*step);
    }
    VP_RETURN_IF_ERROR_R(Expect(TokenType::kRParen, "after for clauses"));
    auto body = ParseBranch();
    if (!body.ok()) return body.error();
    stmt->body = std::move(*body);
    return stmt;
  }

  Result<StmtPtr> ParseDoWhile() {
    const Token& kw = Advance();  // do
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kDoWhile;
    stmt->line = kw.line;
    auto body = ParseBranch();
    if (!body.ok()) return body.error();
    stmt->body = std::move(*body);
    VP_RETURN_IF_ERROR_R(Expect(TokenType::kWhile, "after do body"));
    VP_RETURN_IF_ERROR_R(Expect(TokenType::kLParen, "after 'while'"));
    auto cond = ParseExpression();
    if (!cond.ok()) return cond.error();
    stmt->expr = std::move(*cond);
    VP_RETURN_IF_ERROR_R(Expect(TokenType::kRParen, "after condition"));
    Match(TokenType::kSemicolon);
    return stmt;
  }

  Result<StmtPtr> ParseTry() {
    const Token& kw = Advance();  // try
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kTry;
    stmt->line = kw.line;
    auto body = ParseBlock();
    if (!body.ok()) return body.error();
    stmt->body = std::move(*body);
    VP_RETURN_IF_ERROR_R(Expect(TokenType::kCatch, "after try block"));
    VP_RETURN_IF_ERROR_R(Expect(TokenType::kLParen, "after 'catch'"));
    if (!Check(TokenType::kIdentifier)) {
      return Fail("expected catch parameter name");
    }
    stmt->name = Advance().text;
    VP_RETURN_IF_ERROR_R(Expect(TokenType::kRParen, "after catch parameter"));
    auto handler = ParseBlock();
    if (!handler.ok()) return handler.error();
    stmt->else_branch = std::move(*handler);  // catch body
    return stmt;
  }

  Result<StmtPtr> ParseThrow() {
    const Token& kw = Advance();  // throw
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kThrow;
    stmt->line = kw.line;
    auto value = ParseExpression();
    if (!value.ok()) return value.error();
    stmt->expr = std::move(*value);
    Match(TokenType::kSemicolon);
    return stmt;
  }

  Result<StmtPtr> ParseSwitch() {
    const Token& kw = Advance();  // switch
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kSwitch;
    stmt->line = kw.line;
    VP_RETURN_IF_ERROR_R(Expect(TokenType::kLParen, "after 'switch'"));
    auto discriminant = ParseExpression();
    if (!discriminant.ok()) return discriminant.error();
    stmt->expr = std::move(*discriminant);
    VP_RETURN_IF_ERROR_R(Expect(TokenType::kRParen, "after discriminant"));
    VP_RETURN_IF_ERROR_R(Expect(TokenType::kLBrace, "to open switch"));
    bool saw_default = false;
    while (!Check(TokenType::kRBrace) && !Check(TokenType::kEof)) {
      SwitchCase switch_case;
      if (Match(TokenType::kCase)) {
        auto test = ParseExpression();
        if (!test.ok()) return test.error();
        switch_case.test = std::move(*test);
      } else if (Match(TokenType::kDefault)) {
        if (saw_default) return Fail("duplicate default clause");
        saw_default = true;
      } else {
        return Fail("expected 'case' or 'default'");
      }
      VP_RETURN_IF_ERROR_R(Expect(TokenType::kColon, "after case label"));
      while (!Check(TokenType::kCase) && !Check(TokenType::kDefault) &&
             !Check(TokenType::kRBrace) && !Check(TokenType::kEof)) {
        auto body_stmt = ParseStatement();
        if (!body_stmt.ok()) return body_stmt.error();
        switch_case.body.push_back(std::move(*body_stmt));
      }
      stmt->cases.push_back(std::move(switch_case));
    }
    VP_RETURN_IF_ERROR_R(Expect(TokenType::kRBrace, "to close switch"));
    return stmt;
  }

  Result<StmtPtr> ParseExprStatement() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kExpr;
    stmt->line = Peek().line;
    auto expr = ParseExpression();
    if (!expr.ok()) return expr.error();
    stmt->expr = std::move(*expr);
    Match(TokenType::kSemicolon);
    return stmt;
  }

  // ------------------------------------------------------ expressions

  Result<ExprPtr> ParseExpression() { return ParseAssignment(); }

  Result<ExprPtr> ParseAssignment() {
    auto left = ParseConditional();
    if (!left.ok()) return left;
    TokenType t = Peek().type;
    if (t == TokenType::kAssign || t == TokenType::kPlusAssign ||
        t == TokenType::kMinusAssign || t == TokenType::kStarAssign ||
        t == TokenType::kSlashAssign || t == TokenType::kPercentAssign) {
      const Token op = Advance();
      const ExprKind k = (*left)->kind;
      if (k != ExprKind::kIdentifier && k != ExprKind::kMember &&
          k != ExprKind::kIndex) {
        return Fail("invalid assignment target");
      }
      auto value = ParseAssignment();
      if (!value.ok()) return value;
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kAssign;
      expr->line = op.line;
      expr->op = TokenTypeName(op.type);
      // Plain '=' keeps kNone; compound ops carry their binary part.
      if (op.type != TokenType::kAssign) {
        expr->op_code = TokenOpCode(op.type);
      }
      expr->a = std::move(*left);
      expr->b = std::move(*value);
      return expr;
    }
    return left;
  }

  Result<ExprPtr> ParseConditional() {
    auto cond = ParseBinary(1);
    if (!cond.ok()) return cond;
    if (Match(TokenType::kQuestion)) {
      auto then_e = ParseAssignment();
      if (!then_e.ok()) return then_e;
      VP_RETURN_IF_ERROR_R(Expect(TokenType::kColon, "in conditional"));
      auto else_e = ParseAssignment();
      if (!else_e.ok()) return else_e;
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kConditional;
      expr->line = (*cond)->line;
      expr->a = std::move(*cond);
      expr->b = std::move(*then_e);
      expr->c = std::move(*else_e);
      return expr;
    }
    return cond;
  }

  Result<ExprPtr> ParseBinary(int min_prec) {
    auto left = ParseUnary();
    if (!left.ok()) return left;
    while (true) {
      const TokenType t = Peek().type;
      const int prec = Precedence(t);
      if (prec < min_prec || prec == 0) return left;
      const Token op = Advance();
      auto right = ParseBinary(prec + 1);
      if (!right.ok()) return right;
      auto expr = std::make_unique<Expr>();
      expr->kind = (t == TokenType::kAndAnd || t == TokenType::kOrOr)
                       ? ExprKind::kLogical
                       : ExprKind::kBinary;
      expr->line = op.line;
      expr->op = TokenTypeName(t);
      expr->op_code = TokenOpCode(t);
      expr->a = std::move(*left);
      expr->b = std::move(*right);
      left = Result<ExprPtr>(std::move(expr));
    }
  }

  Result<ExprPtr> ParseUnary() {
    const TokenType t = Peek().type;
    if (t == TokenType::kMinus || t == TokenType::kNot ||
        t == TokenType::kPlus || t == TokenType::kTypeof) {
      const Token op = Advance();
      auto operand = ParseUnary();
      if (!operand.ok()) return operand;
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kUnary;
      expr->line = op.line;
      expr->op = TokenTypeName(op.type);
      expr->op_code = op.type == TokenType::kMinus ? OpCode::kNeg
                      : op.type == TokenType::kPlus ? OpCode::kPos
                                                    : TokenOpCode(op.type);
      expr->a = std::move(*operand);
      return expr;
    }
    if (t == TokenType::kPlusPlus || t == TokenType::kMinusMinus) {
      const Token op = Advance();
      auto operand = ParseUnary();
      if (!operand.ok()) return operand;
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kUpdate;
      expr->line = op.line;
      expr->op = TokenTypeName(op.type);
      expr->op_code = TokenOpCode(op.type);
      expr->prefix = true;
      expr->a = std::move(*operand);
      return expr;
    }
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    auto expr = ParseCallOrMember();
    if (!expr.ok()) return expr;
    const TokenType t = Peek().type;
    if (t == TokenType::kPlusPlus || t == TokenType::kMinusMinus) {
      const Token op = Advance();
      auto update = std::make_unique<Expr>();
      update->kind = ExprKind::kUpdate;
      update->line = op.line;
      update->op = TokenTypeName(op.type);
      update->op_code = TokenOpCode(op.type);
      update->prefix = false;
      update->a = std::move(*expr);
      return Result<ExprPtr>(std::move(update));
    }
    return expr;
  }

  Result<ExprPtr> ParseCallOrMember() {
    auto expr = ParsePrimary();
    if (!expr.ok()) return expr;
    while (true) {
      if (Match(TokenType::kDot)) {
        if (!Check(TokenType::kIdentifier) &&
            Precedence(Peek().type) == 0 && Peek().type != TokenType::kIn) {
          return Fail("expected member name after '.'");
        }
        // Allow keywords as member names (e.g. msg.in) — use the text.
        const Token& name = Advance();
        auto member = std::make_unique<Expr>();
        member->kind = ExprKind::kMember;
        member->line = name.line;
        member->string_value =
            name.text.empty() ? TokenTypeName(name.type) : name.text;
        member->a = std::move(*expr);
        expr = Result<ExprPtr>(std::move(member));
      } else if (Match(TokenType::kLBracket)) {
        auto index = ParseExpression();
        if (!index.ok()) return index;
        VP_RETURN_IF_ERROR_R(Expect(TokenType::kRBracket, "after index"));
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kIndex;
        node->line = (*expr)->line;
        node->a = std::move(*expr);
        node->b = std::move(*index);
        expr = Result<ExprPtr>(std::move(node));
      } else if (Check(TokenType::kLParen)) {
        Advance();
        auto call = std::make_unique<Expr>();
        call->kind = ExprKind::kCall;
        call->line = (*expr)->line;
        call->a = std::move(*expr);
        if (!Check(TokenType::kRParen)) {
          while (true) {
            auto arg = ParseAssignment();
            if (!arg.ok()) return arg;
            call->elements.push_back(std::move(*arg));
            if (!Match(TokenType::kComma)) break;
          }
        }
        VP_RETURN_IF_ERROR_R(Expect(TokenType::kRParen, "after arguments"));
        expr = Result<ExprPtr>(std::move(call));
      } else {
        return expr;
      }
    }
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kNumber: {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kNumber;
        e->line = t.line;
        e->number = t.number;
        return e;
      }
      case TokenType::kString: {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kString;
        e->line = t.line;
        e->string_value = t.text;
        return e;
      }
      case TokenType::kTrue:
      case TokenType::kFalse: {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kBool;
        e->line = t.line;
        e->bool_value = t.type == TokenType::kTrue;
        return e;
      }
      case TokenType::kNull: {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kNull;
        e->line = t.line;
        return e;
      }
      case TokenType::kUndefined: {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kUndefined;
        e->line = t.line;
        return e;
      }
      case TokenType::kIdentifier: {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kIdentifier;
        e->line = t.line;
        e->string_value = t.text;
        return e;
      }
      case TokenType::kLParen: {
        Advance();
        auto inner = ParseExpression();
        if (!inner.ok()) return inner;
        VP_RETURN_IF_ERROR_R(Expect(TokenType::kRParen, "after expression"));
        return inner;
      }
      case TokenType::kLBracket: {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kArrayLiteral;
        e->line = t.line;
        if (!Check(TokenType::kRBracket)) {
          while (true) {
            auto item = ParseAssignment();
            if (!item.ok()) return item;
            e->elements.push_back(std::move(*item));
            if (!Match(TokenType::kComma)) break;
            if (Check(TokenType::kRBracket)) break;  // trailing comma
          }
        }
        VP_RETURN_IF_ERROR_R(Expect(TokenType::kRBracket, "after array"));
        return Result<ExprPtr>(std::move(e));
      }
      case TokenType::kLBrace: {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kObjectLiteral;
        e->line = t.line;
        if (!Check(TokenType::kRBrace)) {
          while (true) {
            std::string key;
            if (Check(TokenType::kIdentifier) || Check(TokenType::kString)) {
              key = Advance().text;
            } else if (Check(TokenType::kNumber)) {
              key = Advance().text;
            } else {
              return Fail("expected property name");
            }
            VP_RETURN_IF_ERROR_R(
                Expect(TokenType::kColon, "after property name"));
            auto value = ParseAssignment();
            if (!value.ok()) return value;
            ObjectProperty prop;
            prop.key = std::move(key);
            prop.value = std::move(*value);
            e->properties.push_back(std::move(prop));
            if (!Match(TokenType::kComma)) break;
            if (Check(TokenType::kRBrace)) break;  // trailing comma
          }
        }
        VP_RETURN_IF_ERROR_R(Expect(TokenType::kRBrace, "after object"));
        return Result<ExprPtr>(std::move(e));
      }
      case TokenType::kFunction: {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kFunction;
        e->line = t.line;
        if (Check(TokenType::kIdentifier)) e->function_name = Advance().text;
        auto params = ParseParamList();
        if (!params.ok()) return params.error();
        e->params = std::move(*params);
        auto body = ParseBlock();
        if (!body.ok()) return body.error();
        e->body = std::move(*body);
        return Result<ExprPtr>(std::move(e));
      }
      default:
        return Fail("expected an expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::shared_ptr<Program>> ParseProgram(std::string_view source) {
  auto tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.error();
  return Parser(std::move(*tokens)).Run();
}

}  // namespace vp::script
