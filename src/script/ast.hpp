// vpscript abstract syntax tree.
//
// Plain struct hierarchy with unique_ptr ownership. The interpreter
// walks this tree directly; no bytecode stage (module scripts are tiny
// — the paper's modules are "lightweight application code"). A resolver
// pass (resolver.hpp) runs between parse and execution and annotates
// the tree in place: identifiers get (frame slot | interned-name)
// coordinates, member accesses and object-literal keys get interned
// property ids, operators get dense opcodes and constant
// subexpressions are folded. Unannotated trees still execute — the
// interpreter falls back to string lookups — so the resolver is an
// accelerator, never a prerequisite.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "script/intern.hpp"

namespace vp::script {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

/// Dense operator codes, assigned by the parser so the interpreter
/// dispatches on an integer instead of comparing operator spellings.
enum class OpCode : uint8_t {
  kNone,
  // binary
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kStrictEq, kStrictNe,
  kLt, kLe, kGt, kGe,
  // logical
  kAndAnd, kOrOr,
  // unary
  kNeg, kPos, kNot, kTypeof,
  // update
  kInc, kDec,
};

/// How an identifier reference was resolved.
enum class RefKind : uint8_t {
  kDynamic,  // unresolved: string lookup through the Environment chain
  kSlot,     // local in a slot-mode function: index into the flat frame
  kEnv,      // environment-backed: interned-id lookup through the chain
};

// ---------------------------------------------------------------- Expr

enum class ExprKind {
  kNumber, kString, kBool, kNull, kUndefined,
  kIdentifier,
  kArrayLiteral, kObjectLiteral,
  kUnary,        // op operand      (-x, !x, typeof x)
  kUpdate,       // ++x, x++, --x, x--
  kBinary,       // left op right
  kLogical,      // && || (short-circuit)
  kConditional,  // cond ? a : b
  kAssign,       // target op= value
  kCall,         // callee(args)
  kMember,       // object.name
  kIndex,        // object[index]
  kFunction,     // function (params) { body }
};

struct ObjectProperty {
  std::string key;
  /// Interned by the resolver; kNoNameId on the fallback path.
  uint32_t key_id = kNoNameId;
  ExprPtr value;
};

/// Out-of-line resolver annotations for the two node kinds that need
/// vectors — functions (parameter slots) and switch statements (case
/// scope slots). Keeping these behind one pointer keeps every
/// Expr/Stmt in the same malloc size class as before the resolver
/// existed; parse speed is dominated by node allocation.
struct ResolverAux {
  /// Function body executes against a pooled flat frame.
  bool slot_mode = false;
  uint16_t frame_size = 0;  // slots incl. params (slot mode)
  /// Frame slot of each positional parameter (slot mode).
  std::vector<uint16_t> param_slots;
  /// kSwitch only: slots declared directly in the cases, reset to
  /// undefined on entry so fall-through dispatch never observes values
  /// from a previous execution of the same switch.
  std::vector<uint16_t> scope_slots;
};

struct Expr {
  ExprKind kind;
  int line = 0;

  /// Integer dispatch code for op (for kAssign: the compound binary op,
  /// kNone for plain '=').
  OpCode op_code = OpCode::kNone;
  // --- resolution annotations (kIdentifier / kMember) ---
  RefKind ref = RefKind::kDynamic;
  bool bool_value = false;    // kBool
  bool prefix = false;        // kUpdate
  bool const_slot = false;    // kSlot: binding declared const
  uint16_t slot = 0;          // kSlot: index into the flat frame
  uint32_t name_id = kNoNameId;  // kEnv identifier / kMember property id
  /// Inline cache for kEnv lookups: last environment (by identity) in
  /// which this reference resolved as a *direct* binding, and its
  /// binding index there. Verified against name_id before use, so a
  /// stale hit degrades to a chain walk, never a wrong binding. The
  /// environment pointer overlays the number-literal payload — a node
  /// is either a number or an identifier, never both.
  mutable uint32_t cache_index = 0;
  union {
    double number = 0;               // kNumber
    mutable const void* cache_env;   // kIdentifier (kEnv)
  };

  std::string string_value;  // string literal / identifier / member name
  std::string op;  // operator spelling for unary/binary/assign/update
  ExprPtr a, b, c;      // children (operands / callee / object / index)

  // Composite
  std::vector<ExprPtr> elements;  // array elements / call args
  std::vector<ObjectProperty> properties;  // object literal

  // kFunction
  std::vector<std::string> params;
  std::vector<StmtPtr> body;
  std::string function_name;  // optional (named function expressions)
  /// Resolver annotations (kFunction); null until resolved.
  std::unique_ptr<ResolverAux> aux;
};

// ---------------------------------------------------------------- Stmt

enum class StmtKind {
  kExpr,
  kVarDecl,   // var/let/const name = init
  kFunction,  // function name(params) { body }
  kReturn,
  kIf,
  kWhile,
  kDoWhile,
  kFor,
  kForIn,     // for (var k in obj)
  kBlock,
  kBreak,
  kContinue,
  kTry,       // try { body } catch (name) { else_branch }
  kThrow,
  kSwitch,    // switch (expr) { cases }
};

struct SwitchCase {
  ExprPtr test;  // nullptr = default
  std::vector<StmtPtr> body;
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  ExprPtr expr;  // kExpr / kReturn value / condition for if/while
  std::string name;  // var name / function name / for-in variable
  bool is_const = false;

  // --- resolution annotations (kVarDecl / kForIn / kTry catch name) ---
  RefKind ref = RefKind::kDynamic;
  uint16_t slot = 0;
  uint32_t name_id = kNoNameId;

  // kIf
  std::vector<StmtPtr> then_branch;
  std::vector<StmtPtr> else_branch;

  // kWhile / kFor / kForIn / kBlock / function body
  std::vector<StmtPtr> body;

  // kFor
  StmtPtr init;
  ExprPtr condition;
  ExprPtr step;

  // kFunction
  std::vector<std::string> params;

  // kSwitch
  std::vector<SwitchCase> cases;

  /// Resolver annotations (kFunction / kSwitch); null until resolved.
  std::unique_ptr<ResolverAux> aux;
};

/// A parsed program: top-level statements.
struct Program {
  std::vector<StmtPtr> statements;
  /// Set by the resolver pass; informational.
  bool resolved = false;
};

}  // namespace vp::script
