// vpscript abstract syntax tree.
//
// Plain struct hierarchy with unique_ptr ownership. The interpreter
// walks this tree directly; no bytecode stage (module scripts are tiny
// — the paper's modules are "lightweight application code").
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace vp::script {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

// ---------------------------------------------------------------- Expr

enum class ExprKind {
  kNumber, kString, kBool, kNull, kUndefined,
  kIdentifier,
  kArrayLiteral, kObjectLiteral,
  kUnary,        // op operand      (-x, !x, typeof x)
  kUpdate,       // ++x, x++, --x, x--
  kBinary,       // left op right
  kLogical,      // && || (short-circuit)
  kConditional,  // cond ? a : b
  kAssign,       // target op= value
  kCall,         // callee(args)
  kMember,       // object.name
  kIndex,        // object[index]
  kFunction,     // function (params) { body }
};

struct Expr {
  ExprKind kind;
  int line = 0;

  // Literals
  double number = 0;
  std::string string_value;  // string literal / identifier / member name
  bool bool_value = false;

  // Composite
  std::vector<ExprPtr> elements;  // array elements / call args
  std::vector<std::pair<std::string, ExprPtr>> properties;  // object literal

  std::string op;  // operator spelling for unary/binary/assign/update
  bool prefix = false;  // for kUpdate
  ExprPtr a, b, c;      // children (operands / callee / object / index)

  // kFunction
  std::vector<std::string> params;
  std::vector<StmtPtr> body;
  std::string function_name;  // optional (named function expressions)
};

// ---------------------------------------------------------------- Stmt

enum class StmtKind {
  kExpr,
  kVarDecl,   // var/let/const name = init
  kFunction,  // function name(params) { body }
  kReturn,
  kIf,
  kWhile,
  kDoWhile,
  kFor,
  kForIn,     // for (var k in obj)
  kBlock,
  kBreak,
  kContinue,
  kTry,       // try { body } catch (name) { else_branch }
  kThrow,
  kSwitch,    // switch (expr) { cases }
};

struct SwitchCase {
  ExprPtr test;  // nullptr = default
  std::vector<StmtPtr> body;
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  ExprPtr expr;  // kExpr / kReturn value / condition for if/while
  std::string name;  // var name / function name / for-in variable
  bool is_const = false;

  // kIf
  std::vector<StmtPtr> then_branch;
  std::vector<StmtPtr> else_branch;

  // kWhile / kFor / kForIn / kBlock / function body
  std::vector<StmtPtr> body;

  // kFor
  StmtPtr init;
  ExprPtr condition;
  ExprPtr step;

  // kFunction
  std::vector<std::string> params;

  // kSwitch
  std::vector<SwitchCase> cases;
};

/// A parsed program: top-level statements.
struct Program {
  std::vector<StmtPtr> statements;
};

}  // namespace vp::script
