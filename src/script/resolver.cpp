#include "script/resolver.hpp"

#include <string>
#include <utility>
#include <vector>

#include "script/interp.hpp"  // EvalBinaryOp: folding shares run-time semantics
#include "script/value.hpp"

namespace vp::script {
namespace {

// ------------------------------------------------------------------
// Pre-scan: decides whether a function body qualifies for slot mode.
// A body qualifies iff it contains no nested function (statement or
// expression) at any depth — then no closure can ever capture one of
// its locals, so the Environment chain is unobservable and a flat
// frame is semantically equivalent. Named function expressions that
// reference their own name additionally need the per-call self
// binding, which only the Environment path provides.

struct ScanResult {
  bool has_function = false;
  bool refs_self = false;
  size_t decl_count = 0;
};

void ScanExpr(const Expr& e, const std::string* self, ScanResult* out);
void ScanStmts(const std::vector<StmtPtr>& stmts, const std::string* self,
               ScanResult* out);

void ScanStmt(const Stmt& s, const std::string* self, ScanResult* out) {
  if (out->has_function) return;
  switch (s.kind) {
    case StmtKind::kFunction:
      out->has_function = true;
      return;
    case StmtKind::kVarDecl:
    case StmtKind::kForIn:
    case StmtKind::kTry:  // catch binding
      ++out->decl_count;
      break;
    default:
      break;
  }
  if (s.expr) ScanExpr(*s.expr, self, out);
  if (s.init) ScanStmt(*s.init, self, out);
  if (s.condition) ScanExpr(*s.condition, self, out);
  if (s.step) ScanExpr(*s.step, self, out);
  ScanStmts(s.then_branch, self, out);
  ScanStmts(s.else_branch, self, out);
  ScanStmts(s.body, self, out);
  for (const auto& c : s.cases) {
    if (c.test) ScanExpr(*c.test, self, out);
    ScanStmts(c.body, self, out);
  }
}

void ScanStmts(const std::vector<StmtPtr>& stmts, const std::string* self,
               ScanResult* out) {
  for (const auto& s : stmts) {
    if (out->has_function) return;
    ScanStmt(*s, self, out);
  }
}

void ScanExpr(const Expr& e, const std::string* self, ScanResult* out) {
  if (out->has_function) return;
  if (e.kind == ExprKind::kFunction) {
    out->has_function = true;
    return;
  }
  if (e.kind == ExprKind::kIdentifier && self != nullptr &&
      e.string_value == *self) {
    out->refs_self = true;
  }
  for (const auto& el : e.elements) ScanExpr(*el, self, out);
  for (const auto& p : e.properties) ScanExpr(*p.value, self, out);
  if (e.a) ScanExpr(*e.a, self, out);
  if (e.b) ScanExpr(*e.b, self, out);
  if (e.c) ScanExpr(*e.c, self, out);
}

// ------------------------------------------------------ constant fold

bool IsLiteral(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kNumber:
    case ExprKind::kString:
    case ExprKind::kBool:
    case ExprKind::kNull:
    case ExprKind::kUndefined:
      return true;
    default:
      return false;
  }
}

Value LiteralValue(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kNumber: return Value(e.number);
    case ExprKind::kString: return Value(e.string_value);
    case ExprKind::kBool: return Value(e.bool_value);
    case ExprKind::kNull: return Value(nullptr);
    default: return Value::Undefined();
  }
}

void ReplaceWithLiteral(Expr& e, const Value& v) {
  const int line = e.line;
  e = Expr{};
  e.line = line;
  switch (v.type()) {
    case ValueType::kNumber:
      e.kind = ExprKind::kNumber;
      e.number = v.AsNumber();
      break;
    case ValueType::kString:
      e.kind = ExprKind::kString;
      e.string_value = v.AsString();
      break;
    case ValueType::kBool:
      e.kind = ExprKind::kBool;
      e.bool_value = v.AsBool();
      break;
    case ValueType::kNull:
      e.kind = ExprKind::kNull;
      break;
    default:
      e.kind = ExprKind::kUndefined;
      break;
  }
}

void ReplaceWithChild(Expr& e, ExprPtr child) {
  ExprPtr saved = std::move(child);  // keep the node alive across the move
  e = std::move(*saved);
}

// ---------------------------------------------------------- resolver

class Resolver {
 public:
  void Run(Program& program) {
    // The top level is an environment region: globals must stay
    // Environment-backed for Context interop (Get/Set/Call, snapshot
    // and restore, host bindings).
    ResolveStmts(program.statements);
    program.resolved = true;
  }

 private:
  struct Local {
    uint32_t name_id;
    uint16_t slot;
  };
  struct Scope {
    std::vector<Local> locals;
  };
  struct FunctionCtx {
    uint32_t next_slot = 0;
    std::vector<Scope> scopes;
    std::vector<bool> slot_is_const;  // indexed by slot
  };

  // Non-null while resolving the body of a slot-mode function.
  FunctionCtx* fn_ = nullptr;

  static uint32_t Intern(const std::string& s) {
    return Interner::Global().Intern(s);
  }

  bool InSlotMode() const { return fn_ != nullptr; }

  void PushScope() {
    if (fn_) fn_->scopes.push_back({});
  }
  void PopScope(std::vector<uint16_t>* collect = nullptr) {
    if (!fn_) return;
    if (collect) {
      for (const Local& l : fn_->scopes.back().locals) {
        collect->push_back(l.slot);
      }
    }
    fn_->scopes.pop_back();
  }

  uint16_t Declare(uint32_t name_id, bool is_const) {
    Scope& scope = fn_->scopes.back();
    for (const Local& l : scope.locals) {
      if (l.name_id == name_id) {
        // Redeclaration in the same scope reuses the binding, exactly
        // like Environment::Define.
        fn_->slot_is_const[l.slot] = is_const;
        return l.slot;
      }
    }
    const auto slot = static_cast<uint16_t>(fn_->next_slot++);
    scope.locals.push_back(Local{name_id, slot});
    fn_->slot_is_const.push_back(is_const);
    return slot;
  }

  const Local* Lookup(uint32_t name_id) const {
    for (auto it = fn_->scopes.rbegin(); it != fn_->scopes.rend(); ++it) {
      for (const Local& l : it->locals) {
        if (l.name_id == name_id) return &l;
      }
    }
    return nullptr;
  }

  void ResolveFunction(const std::vector<std::string>& params,
                       std::vector<StmtPtr>& body,
                       const std::string& self_name,
                       std::unique_ptr<ResolverAux>& aux) {
    ScanResult scan;
    const std::string* self = self_name.empty() ? nullptr : &self_name;
    ScanStmts(body, self, &scan);
    // decl_count is a conservative upper bound on slots; uint16 frames
    // cap out far above any real module, but bail to env mode rather
    // than overflow.
    const bool qualifies = !scan.has_function && !scan.refs_self &&
                           params.size() + scan.decl_count < 60000;
    FunctionCtx* saved = fn_;
    if (qualifies) {
      FunctionCtx ctx;
      fn_ = &ctx;
      // Params and body-top-level vars share one scope, mirroring the
      // env path (params Defined in the call env, body run against it).
      fn_->scopes.push_back({});
      if (!aux) aux = std::make_unique<ResolverAux>();
      aux->param_slots.clear();
      aux->param_slots.reserve(params.size());
      for (const auto& p : params) {
        aux->param_slots.push_back(Declare(Intern(p), /*is_const=*/false));
      }
      ResolveStmts(body);
      fn_ = saved;
      aux->slot_mode = true;
      aux->frame_size = static_cast<uint16_t>(ctx.next_slot);
    } else {
      fn_ = nullptr;  // the body is an environment region
      ResolveStmts(body);
      fn_ = saved;
      if (aux) {
        aux->slot_mode = false;
        aux->frame_size = 0;
        aux->param_slots.clear();
      }
    }
  }

  void ResolveStmts(std::vector<StmtPtr>& stmts) {
    for (auto& s : stmts) ResolveStmt(*s);
  }

  void ResolveStmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::kExpr:
      case StmtKind::kReturn:
      case StmtKind::kThrow:
        if (s.expr) ResolveExpr(*s.expr);
        break;
      case StmtKind::kVarDecl:
        // The initializer is resolved before the name is declared:
        // references to the name inside it resolve outward, matching
        // the env path where Define runs only after the init evaluates.
        if (s.expr) ResolveExpr(*s.expr);
        s.name_id = Intern(s.name);
        if (InSlotMode()) {
          s.ref = RefKind::kSlot;
          s.slot = Declare(s.name_id, s.is_const);
        } else {
          s.ref = RefKind::kEnv;
        }
        break;
      case StmtKind::kFunction:
        // Only reachable in environment regions — a body containing a
        // function declaration never qualifies for slot mode. The
        // declared name stays env-backed (hoisting needs an env), but
        // the function's own body may still be slot mode.
        s.name_id = Intern(s.name);
        ResolveFunction(s.params, s.body, /*self_name=*/std::string(),
                        s.aux);
        break;
      case StmtKind::kIf:
        ResolveExpr(*s.expr);
        PushScope();
        ResolveStmts(s.then_branch);
        PopScope();
        PushScope();
        ResolveStmts(s.else_branch);
        PopScope();
        break;
      case StmtKind::kWhile:
      case StmtKind::kDoWhile:
        ResolveExpr(*s.expr);
        PushScope();
        ResolveStmts(s.body);
        PopScope();
        break;
      case StmtKind::kFor:
        PushScope();  // loop scope: init declaration, cond, step
        if (s.init) ResolveStmt(*s.init);
        if (s.condition) ResolveExpr(*s.condition);
        if (s.step) ResolveExpr(*s.step);
        PushScope();  // per-iteration body scope
        ResolveStmts(s.body);
        PopScope();
        PopScope();
        break;
      case StmtKind::kForIn:
        ResolveExpr(*s.expr);  // the object, in the enclosing scope
        s.name_id = Intern(s.name);
        PushScope();
        if (InSlotMode()) {
          s.ref = RefKind::kSlot;
          s.slot = Declare(s.name_id, /*is_const=*/false);
        } else {
          s.ref = RefKind::kEnv;
        }
        ResolveStmts(s.body);
        PopScope();
        break;
      case StmtKind::kBlock:
        PushScope();
        ResolveStmts(s.body);
        PopScope();
        break;
      case StmtKind::kTry:
        PushScope();
        ResolveStmts(s.body);
        PopScope();
        s.name_id = Intern(s.name);
        PushScope();
        if (InSlotMode()) {
          s.ref = RefKind::kSlot;
          s.slot = Declare(s.name_id, /*is_const=*/false);
        } else {
          s.ref = RefKind::kEnv;
        }
        ResolveStmts(s.else_branch);
        PopScope();
        break;
      case StmtKind::kSwitch:
        ResolveExpr(*s.expr);
        // All cases share one scope (matching the env path's single
        // switch scope with fall-through).
        PushScope();
        for (auto& c : s.cases) {
          if (c.test) ResolveExpr(*c.test);
          ResolveStmts(c.body);
        }
        if (InSlotMode()) {
          if (!s.aux) s.aux = std::make_unique<ResolverAux>();
          s.aux->scope_slots.clear();
          PopScope(&s.aux->scope_slots);
        } else {
          PopScope();
        }
        break;
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        break;
    }
  }

  void ResolveExpr(Expr& e) {
    switch (e.kind) {
      case ExprKind::kNumber:
      case ExprKind::kString:
      case ExprKind::kBool:
      case ExprKind::kNull:
      case ExprKind::kUndefined:
        break;
      case ExprKind::kIdentifier: {
        const uint32_t id = Intern(e.string_value);
        if (InSlotMode()) {
          if (const Local* l = Lookup(id)) {
            e.ref = RefKind::kSlot;
            e.slot = l->slot;
            e.const_slot = fn_->slot_is_const[l->slot];
            break;
          }
        }
        e.ref = RefKind::kEnv;
        e.name_id = id;
        break;
      }
      case ExprKind::kArrayLiteral:
        for (auto& el : e.elements) ResolveExpr(*el);
        break;
      case ExprKind::kObjectLiteral:
        for (auto& p : e.properties) {
          p.key_id = Intern(p.key);
          ResolveExpr(*p.value);
        }
        break;
      case ExprKind::kUnary:
        ResolveExpr(*e.a);
        FoldUnary(e);
        break;
      case ExprKind::kUpdate:
        ResolveExpr(*e.a);
        break;
      case ExprKind::kBinary:
        ResolveExpr(*e.a);
        ResolveExpr(*e.b);
        FoldBinary(e);
        break;
      case ExprKind::kLogical:
        ResolveExpr(*e.a);
        ResolveExpr(*e.b);
        FoldLogical(e);
        break;
      case ExprKind::kConditional:
        ResolveExpr(*e.a);
        ResolveExpr(*e.b);
        ResolveExpr(*e.c);
        if (IsLiteral(*e.a)) {
          ReplaceWithChild(e, LiteralValue(*e.a).Truthy() ? std::move(e.b)
                                                          : std::move(e.c));
        }
        break;
      case ExprKind::kAssign:
        ResolveExpr(*e.a);
        ResolveExpr(*e.b);
        break;
      case ExprKind::kCall:
        ResolveExpr(*e.a);
        for (auto& arg : e.elements) ResolveExpr(*arg);
        break;
      case ExprKind::kMember:
        ResolveExpr(*e.a);
        e.name_id = Intern(e.string_value);
        break;
      case ExprKind::kIndex:
        ResolveExpr(*e.a);
        ResolveExpr(*e.b);
        break;
      case ExprKind::kFunction:
        ResolveFunction(e.params, e.body, e.function_name, e.aux);
        break;
    }
  }

  void FoldUnary(Expr& e) {
    if (!IsLiteral(*e.a)) return;
    const Value v = LiteralValue(*e.a);
    switch (e.op_code) {
      case OpCode::kNeg: ReplaceWithLiteral(e, Value(-v.ToNumber())); break;
      case OpCode::kPos: ReplaceWithLiteral(e, Value(v.ToNumber())); break;
      case OpCode::kNot: ReplaceWithLiteral(e, Value(!v.Truthy())); break;
      default: break;  // typeof et al.: leave to the interpreter
    }
  }

  void FoldBinary(Expr& e) {
    if (!IsLiteral(*e.a) || !IsLiteral(*e.b)) return;
    auto r = EvalBinaryOp(e.op_code, LiteralValue(*e.a), LiteralValue(*e.b));
    if (!r.ok()) return;  // unknown op — let the interpreter report it
    ReplaceWithLiteral(e, *r);
  }

  void FoldLogical(Expr& e) {
    if (!IsLiteral(*e.a)) return;
    const bool truthy = LiteralValue(*e.a).Truthy();
    if (e.op_code == OpCode::kAndAnd) {
      ReplaceWithChild(e, truthy ? std::move(e.b) : std::move(e.a));
    } else if (e.op_code == OpCode::kOrOr) {
      ReplaceWithChild(e, truthy ? std::move(e.a) : std::move(e.b));
    }
  }
};

}  // namespace

void ResolveProgram(Program& program) {
  Resolver().Run(program);
}

}  // namespace vp::script
