#include "script/context.hpp"

#include <cstdlib>
#include <set>
#include <string_view>

#include "script/compiler.hpp"
#include "script/convert.hpp"
#include "script/resolver.hpp"

namespace vp::script {

namespace {

ScriptEngine ResolveEngine(ScriptEngine requested) {
  if (requested != ScriptEngine::kAuto) return requested;
  const char* env = std::getenv("VP_SCRIPT_ENGINE");
  if (env != nullptr && std::string_view(env) == "interp") {
    return ScriptEngine::kInterp;
  }
  return ScriptEngine::kVm;
}

}  // namespace

Context::Context(ContextOptions options)
    : resolve_(options.resolve), options_(options) {
  globals_ = std::make_shared<Environment>();
  InstallStdlib(*globals_, options.random_seed);
  interp_ = std::make_unique<Interpreter>(globals_, options.limits);
  // The VM compiles the resolved AST; without resolution only the
  // interpreter can run the program.
  engine_ = resolve_ ? ResolveEngine(options.engine) : ScriptEngine::kInterp;
}

Context::~Context() {
  // The interpreter's closures and environments form shared_ptr cycles
  // (closure → environment → binding → closure); sever them explicitly
  // so a destroyed context releases its heap immediately.
  Environment::TearDownChain(globals_);
}

void Context::RegisterHostFunction(const std::string& name, HostFunction fn) {
  Value v = Value::MakeHostFunction(name, std::move(fn));
  if (vm_ != nullptr) vm_->ImportGlobal(name, v, /*baseline=*/true);
  globals_->Define(name, std::move(v));
}

void Context::DefineGlobal(const std::string& name, Value v) {
  if (vm_ != nullptr) vm_->ImportGlobal(name, v, /*baseline=*/true);
  globals_->Define(name, std::move(v));
}

Status Context::Load(const std::string& source) {
  auto program = ParseProgram(source);
  if (!program.ok()) return Status(program.error());
  program_ = *program;
  // A reload replaces the whole program. Drop the previous VM now:
  // if compilation of the new program fails below, execution falls to
  // the interpreter, and a stale vm_ would otherwise keep routing
  // Call/GetGlobal/SnapshotState to the old program's state.
  vm_.reset();
  if (resolve_) ResolveProgram(*program_);
  baseline_globals_ = globals_->LocalNames();

  if (engine_ == ScriptEngine::kVm) {
    auto vm = std::make_unique<Vm>(options_.limits, interp_.get());
    // Baseline first: stdlib + host functions occupy the low global
    // slots, flagged so snapshots skip them.
    for (const std::string& name : baseline_globals_) {
      if (const Value* v = globals_->Find(name)) {
        vm->ImportGlobal(name, *v, /*baseline=*/true);
      }
    }
    auto top = CompileProgram(*program_, *vm);
    if (top.ok()) {
      vm_ = std::move(vm);
      return vm_->RunTopLevel(*top);
    }
    // Compilation failed (program uses something the compiler does not
    // support): fall back to the interpreter for this context.
    engine_ = ScriptEngine::kInterp;
  }

  interp_->ResetBudget();
  auto result = interp_->RunProgram(program_);
  if (!result.ok()) return Status(result.error());
  return Status::Ok();
}

json::Value Context::SnapshotState() const {
  if (vm_ != nullptr) return vm_->SnapshotState();
  json::Value snapshot = json::Value::MakeObject();
  std::set<std::string> baseline(baseline_globals_.begin(),
                                 baseline_globals_.end());
  for (const std::string& name : globals_->LocalNames()) {
    if (baseline.count(name) != 0) continue;
    const Value* value = globals_->Find(name);
    if (value == nullptr || value->is_function()) continue;
    auto serialized = ScriptToJson(*value);
    if (!serialized.ok()) continue;  // skip non-serializable state
    // Distinguish "undefined" (skip) from an explicit null.
    if (value->is_undefined()) continue;
    snapshot[name] = std::move(*serialized);
  }
  return snapshot;
}

Status Context::RestoreState(const json::Value& snapshot) {
  if (!snapshot.is_object()) {
    return Status(StatusCode::kInvalidArgument,
                  "state snapshot must be an object");
  }
  if (vm_ != nullptr) {
    vm_->RestoreState(snapshot);
    return Status::Ok();
  }
  for (const auto& [name, value] : snapshot.AsObject()) {
    globals_->Define(name, JsonToScript(value));
  }
  return Status::Ok();
}

bool Context::HasFunction(const std::string& name) const {
  if (vm_ != nullptr) return vm_->GlobalIsFunction(name);
  Value* v = globals_->Find(name);
  return v != nullptr && v->is_function();
}

Result<Value> Context::Call(const std::string& name, std::vector<Value> args) {
  if (vm_ != nullptr) {
    vm_->ResetBudget();
    return vm_->CallGlobal(name, std::move(args));
  }
  Value* fn = nullptr;
  if (name == call_cache_name_) {
    fn = globals_->ValueAtIfId(call_cache_index_, call_cache_id_);
  }
  if (fn == nullptr) {
    const uint32_t id = Interner::Global().Intern(name);
    const uint32_t index = globals_->LocalIndexById(id);
    if (index != Environment::kNpos) {
      fn = globals_->ValueAtIfId(index, id);
      call_cache_name_ = name;
      call_cache_id_ = id;
      call_cache_index_ = index;
    }
  }
  if (fn == nullptr || !fn->is_function()) {
    return NotFound("no function '" + name + "' in module");
  }
  interp_->ResetBudget();
  return interp_->Call(*fn, std::move(args));
}

Value Context::GetGlobal(const std::string& name) const {
  if (vm_ != nullptr) return vm_->GetGlobalBoxed(name);
  Value* v = globals_->Find(name);
  return v ? *v : Value::Undefined();
}

}  // namespace vp::script
