// vpscript lexer.
//
// vpscript is VideoPipe's module language: a small, strict subset of
// JavaScript executed by a tree-walking interpreter (our stand-in for
// the paper's Duktape engine). The lexer produces a flat token stream
// with line/column positions for error reporting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace vp::script {

enum class TokenType {
  // Literals / identifiers
  kNumber,
  kString,
  kIdentifier,
  // Keywords
  kVar, kLet, kConst, kFunction, kReturn, kIf, kElse, kWhile, kFor,
  kBreak, kContinue, kTrue, kFalse, kNull, kUndefined, kTypeof, kIn,
  kTry, kCatch, kThrow, kSwitch, kCase, kDefault, kDo,
  // Punctuation
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemicolon, kColon, kDot, kQuestion,
  // Operators
  kAssign, kPlusAssign, kMinusAssign, kStarAssign, kSlashAssign,
  kPercentAssign,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kEq, kNe, kStrictEq, kStrictNe, kLt, kLe, kGt, kGe,
  kAndAnd, kOrOr, kNot,
  kPlusPlus, kMinusMinus,
  kEof,
};

const char* TokenTypeName(TokenType t);

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;   // identifier name / string value
  double number = 0;  // numeric value
  int line = 0;
  int column = 0;
};

/// Tokenize a complete source file. `//` and `/* */` comments are
/// skipped.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace vp::script
