#include "script/interp.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "common/strings.hpp"

namespace vp::script {

namespace {

/// Fallback mapping for ASTs that never went through the parser's
/// opcode assignment (hand-built trees); resolved/parsed programs
/// always carry op_code.
OpCode BinaryOpFromSpelling(const std::string& op) {
  if (op == "+") return OpCode::kAdd;
  if (op == "-") return OpCode::kSub;
  if (op == "*") return OpCode::kMul;
  if (op == "/") return OpCode::kDiv;
  if (op == "%") return OpCode::kMod;
  if (op == "==") return OpCode::kEq;
  if (op == "!=") return OpCode::kNe;
  if (op == "===") return OpCode::kStrictEq;
  if (op == "!==") return OpCode::kStrictNe;
  if (op == "<") return OpCode::kLt;
  if (op == "<=") return OpCode::kLe;
  if (op == ">") return OpCode::kGt;
  if (op == ">=") return OpCode::kGe;
  return OpCode::kNone;
}

Value MakeFunctionFromStmt(const Stmt& stmt,
                           const std::shared_ptr<Program>& owner,
                           const std::shared_ptr<Environment>& closure) {
  auto fn = std::make_shared<ScriptFunction>();
  fn->name = stmt.name;
  fn->params = stmt.params;
  fn->body = &stmt.body;
  fn->owner = owner;
  fn->closure = closure;
  if (stmt.aux != nullptr && stmt.aux->slot_mode) {
    fn->slot_mode = true;
    fn->frame_size = stmt.aux->frame_size;
    fn->param_slots = &stmt.aux->param_slots;
  }
  return Value(std::move(fn));
}

}  // namespace

Interpreter::Interpreter(std::shared_ptr<Environment> globals,
                         InterpreterLimits limits)
    : globals_(std::move(globals)), limits_(limits) {
  print_ = [](const std::string& line) { VP_INFO("script") << line; };
}

void Interpreter::Print(const std::string& line) {
  if (print_) print_(line);
}

Status Interpreter::BudgetExhausted(int line) const {
  return Status(StatusCode::kResourceExhausted,
                Format("script:%d: step budget exceeded (%llu steps)", line,
                       static_cast<unsigned long long>(limits_.max_steps)));
}

Error Interpreter::Raise(int line, const std::string& what) const {
  return ScriptError(Format("script:%d: %s", line, what.c_str()));
}

std::vector<Value> Interpreter::AcquireFrame(size_t size) {
  if (frame_pool_.empty()) return std::vector<Value>(size);
  std::vector<Value> frame = std::move(frame_pool_.back());
  frame_pool_.pop_back();
  frame.resize(size);  // values were cleared on release; capacity kept
  return frame;
}

void Interpreter::ReleaseFrame(std::vector<Value> frame) {
  // Drop values now so the pool never pins objects alive between calls.
  frame.clear();
  if (frame_pool_.size() < 16) frame_pool_.push_back(std::move(frame));
}

Result<Value> Interpreter::RunProgram(
    const std::shared_ptr<Program>& program) {
  current_program_ = program;
  // Hoist function declarations.
  for (const StmtPtr& stmt : program->statements) {
    if (stmt->kind == StmtKind::kFunction) {
      globals_->Define(stmt->name,
                       MakeFunctionFromStmt(*stmt, program, globals_));
    }
  }
  const ScopeCtx ctx{globals_, nullptr};
  Value last;
  for (const StmtPtr& stmt : program->statements) {
    if (stmt->kind == StmtKind::kFunction) continue;  // already hoisted
    auto r = ExecStmt(*stmt, ctx);
    if (!r.ok()) return r.error();
    if (r->flow == Flow::kReturn) return r->value;
    if (r->flow != Flow::kNormal) {
      return Raise(stmt->line, "break/continue outside a loop");
    }
    last = r->value;
  }
  return last;
}

Result<Value> Interpreter::Call(const Value& fn, std::vector<Value> args) {
  if (fn.type() == ValueType::kHostFunction) {
    return fn.AsHostFunction()->fn(args, *this);
  }
  if (fn.type() != ValueType::kFunction) {
    return ScriptError("attempt to call a " +
                       std::string(ValueTypeName(fn.type())));
  }
  if (call_depth_ >= limits_.max_call_depth) {
    return ScriptError(Format("call depth limit (%d) exceeded",
                              limits_.max_call_depth));
  }
  const auto& def = fn.AsFunction();
  if (def->slot_mode && def->param_slots != nullptr) {
    // Capture-free function: locals live in a pooled flat frame, no
    // per-call Environment. kEnv references inside the body go
    // straight to the closure chain (typically the globals).
    ++slot_frames_used_;
    std::vector<Value> frame = AcquireFrame(def->frame_size);
    const std::vector<uint16_t>& slots = *def->param_slots;
    const size_t n = std::min(args.size(), slots.size());
    for (size_t i = 0; i < n; ++i) frame[slots[i]] = std::move(args[i]);
    ++call_depth_;
    const ScopeCtx ctx{def->closure, &frame};
    auto r = ExecBlock(*def->body, ctx);
    --call_depth_;
    ReleaseFrame(std::move(frame));
    if (!r.ok()) return r.error();
    if (r->flow == Flow::kReturn) return std::move(r->value);
    return Value::Undefined();
  }
  auto env = std::make_shared<Environment>(def->closure);
  // Named function expressions can refer to themselves by name.
  if (!def->name.empty() && env->Find(def->name) == nullptr) {
    env->Define(def->name, fn);
  }
  for (size_t i = 0; i < def->params.size(); ++i) {
    env->Define(def->params[i],
                i < args.size() ? std::move(args[i]) : Value::Undefined());
  }
  ++call_depth_;
  const ScopeCtx ctx{env, nullptr};
  auto r = ExecBlock(*def->body, ctx);
  --call_depth_;
  if (!r.ok()) return r.error();
  if (r->flow == Flow::kReturn) return r->value;
  return Value::Undefined();
}

Result<Interpreter::ExecResult> Interpreter::ExecBlock(
    const std::vector<StmtPtr>& stmts, const ScopeCtx& ctx) {
  // Hoist function declarations within the block. Slot-mode bodies
  // never contain function declarations (resolver guarantee), so the
  // scan only runs for environment-backed scopes.
  if (ctx.frame == nullptr) {
    for (const StmtPtr& stmt : stmts) {
      if (stmt->kind == StmtKind::kFunction) {
        ctx.env->Define(stmt->name,
                        MakeFunctionFromStmt(*stmt, current_program_, ctx.env));
      }
    }
  }
  for (const StmtPtr& stmt : stmts) {
    if (stmt->kind == StmtKind::kFunction) continue;
    auto r = ExecStmt(*stmt, ctx);
    if (!r.ok()) return r;
    if (r->flow != Flow::kNormal) return r;
  }
  return ExecResult{};
}

Result<Interpreter::ExecResult> Interpreter::ExecStmt(const Stmt& stmt,
                                                      const ScopeCtx& ctx) {
  VP_RETURN_IF_ERROR_R(Charge(stmt.line));
  switch (stmt.kind) {
    case StmtKind::kExpr: {
      auto v = Eval(*stmt.expr, ctx);
      if (!v.ok()) return v.error();
      return ExecResult{Flow::kNormal, std::move(*v)};
    }
    case StmtKind::kVarDecl: {
      Value init;
      if (stmt.expr) {
        auto v = Eval(*stmt.expr, ctx);
        if (!v.ok()) return v.error();
        init = std::move(*v);
      }
      if (stmt.ref == RefKind::kSlot && ctx.frame != nullptr) {
        (*ctx.frame)[stmt.slot] = std::move(init);
      } else if (stmt.name_id != kNoNameId) {
        ctx.env->DefineById(stmt.name_id, std::move(init), stmt.is_const);
      } else {
        ctx.env->Define(stmt.name, std::move(init), stmt.is_const);
      }
      return ExecResult{};
    }
    case StmtKind::kFunction: {
      // Non-hoisted path (e.g. function declared inside `if`). Only
      // reachable in environment scopes.
      if (ctx.frame != nullptr) {
        return Raise(stmt.line,
                     "function declaration in a slot-resolved scope");
      }
      ctx.env->Define(stmt.name,
                      MakeFunctionFromStmt(stmt, current_program_, ctx.env));
      return ExecResult{};
    }
    case StmtKind::kReturn: {
      Value v;
      if (stmt.expr) {
        auto r = Eval(*stmt.expr, ctx);
        if (!r.ok()) return r.error();
        v = std::move(*r);
      }
      return ExecResult{Flow::kReturn, std::move(v)};
    }
    case StmtKind::kIf: {
      auto cond = Eval(*stmt.expr, ctx);
      if (!cond.ok()) return cond.error();
      const auto& branch = cond->Truthy() ? stmt.then_branch
                                          : stmt.else_branch;
      if (ctx.frame != nullptr) return ExecBlock(branch, ctx);
      auto scope = std::make_shared<Environment>(ctx.env);
      const ScopeCtx inner{scope, nullptr};
      return ExecBlock(branch, inner);
    }
    case StmtKind::kWhile: {
      while (true) {
        VP_RETURN_IF_ERROR_R(Charge(stmt.line));
        auto cond = Eval(*stmt.expr, ctx);
        if (!cond.ok()) return cond.error();
        if (!cond->Truthy()) break;
        Result<ExecResult> r = ExecResult{};
        if (ctx.frame != nullptr) {
          r = ExecBlock(stmt.body, ctx);
        } else {
          auto scope = std::make_shared<Environment>(ctx.env);
          const ScopeCtx inner{scope, nullptr};
          r = ExecBlock(stmt.body, inner);
        }
        if (!r.ok()) return r;
        if (r->flow == Flow::kReturn) return r;
        if (r->flow == Flow::kBreak) break;
      }
      return ExecResult{};
    }
    case StmtKind::kFor: {
      if (ctx.frame != nullptr) {
        if (stmt.init) {
          auto r = ExecStmt(*stmt.init, ctx);
          if (!r.ok()) return r;
        }
        while (true) {
          VP_RETURN_IF_ERROR_R(Charge(stmt.line));
          if (stmt.condition) {
            auto cond = Eval(*stmt.condition, ctx);
            if (!cond.ok()) return cond.error();
            if (!cond->Truthy()) break;
          }
          auto r = ExecBlock(stmt.body, ctx);
          if (!r.ok()) return r;
          if (r->flow == Flow::kReturn) return r;
          if (r->flow == Flow::kBreak) break;
          if (stmt.step) {
            auto s = Eval(*stmt.step, ctx);
            if (!s.ok()) return s.error();
          }
        }
        return ExecResult{};
      }
      auto loop_env = std::make_shared<Environment>(ctx.env);
      const ScopeCtx loop_ctx{loop_env, nullptr};
      if (stmt.init) {
        auto r = ExecStmt(*stmt.init, loop_ctx);
        if (!r.ok()) return r;
      }
      while (true) {
        VP_RETURN_IF_ERROR_R(Charge(stmt.line));
        if (stmt.condition) {
          auto cond = Eval(*stmt.condition, loop_ctx);
          if (!cond.ok()) return cond.error();
          if (!cond->Truthy()) break;
        }
        auto scope = std::make_shared<Environment>(loop_env);
        const ScopeCtx iter_ctx{scope, nullptr};
        auto r = ExecBlock(stmt.body, iter_ctx);
        if (!r.ok()) return r;
        if (r->flow == Flow::kReturn) return r;
        if (r->flow == Flow::kBreak) break;
        if (stmt.step) {
          auto s = Eval(*stmt.step, loop_ctx);
          if (!s.ok()) return s.error();
        }
      }
      return ExecResult{};
    }
    case StmtKind::kForIn: {
      auto obj = Eval(*stmt.expr, ctx);
      if (!obj.ok()) return obj.error();
      std::vector<std::string> keys;
      if (obj->is_object()) {
        for (const auto& entry : obj->AsObject()->items()) {
          keys.push_back(entry.key);
        }
      } else if (obj->is_array()) {
        for (size_t i = 0; i < obj->AsArray()->size(); ++i) {
          keys.push_back(Format("%zu", i));
        }
      } else {
        return Raise(stmt.line, "for-in over a non-object");
      }
      for (const auto& key : keys) {
        VP_RETURN_IF_ERROR_R(Charge(stmt.line));
        Result<ExecResult> r = ExecResult{};
        if (stmt.ref == RefKind::kSlot && ctx.frame != nullptr) {
          (*ctx.frame)[stmt.slot] = Value(key);
          r = ExecBlock(stmt.body, ctx);
        } else {
          auto scope = std::make_shared<Environment>(ctx.env);
          if (stmt.name_id != kNoNameId) {
            scope->DefineById(stmt.name_id, Value(key));
          } else {
            scope->Define(stmt.name, Value(key));
          }
          const ScopeCtx inner{scope, nullptr};
          r = ExecBlock(stmt.body, inner);
        }
        if (!r.ok()) return r;
        if (r->flow == Flow::kReturn) return r;
        if (r->flow == Flow::kBreak) break;
      }
      return ExecResult{};
    }
    case StmtKind::kBlock: {
      if (ctx.frame != nullptr) return ExecBlock(stmt.body, ctx);
      auto scope = std::make_shared<Environment>(ctx.env);
      const ScopeCtx inner{scope, nullptr};
      return ExecBlock(stmt.body, inner);
    }
    case StmtKind::kDoWhile: {
      while (true) {
        VP_RETURN_IF_ERROR_R(Charge(stmt.line));
        Result<ExecResult> r = ExecResult{};
        if (ctx.frame != nullptr) {
          r = ExecBlock(stmt.body, ctx);
        } else {
          auto scope = std::make_shared<Environment>(ctx.env);
          const ScopeCtx inner{scope, nullptr};
          r = ExecBlock(stmt.body, inner);
        }
        if (!r.ok()) return r;
        if (r->flow == Flow::kReturn) return r;
        if (r->flow == Flow::kBreak) break;
        auto cond = Eval(*stmt.expr, ctx);
        if (!cond.ok()) return cond.error();
        if (!cond->Truthy()) break;
      }
      return ExecResult{};
    }
    case StmtKind::kTry: {
      Result<ExecResult> r = ExecResult{};
      if (ctx.frame != nullptr) {
        r = ExecBlock(stmt.body, ctx);
      } else {
        auto scope = std::make_shared<Environment>(ctx.env);
        const ScopeCtx inner{scope, nullptr};
        r = ExecBlock(stmt.body, inner);
      }
      if (r.ok()) return r;
      // Budget/depth exhaustion is not catchable — a runaway module
      // must not catch its own kill signal.
      if (r.error().code() == StatusCode::kResourceExhausted) {
        return r;
      }
      auto error_object = std::make_shared<ScriptObject>();
      error_object->Set("message", Value(r.error().message()));
      error_object->Set("code",
                        Value(std::string(StatusCodeName(r.error().code()))));
      if (stmt.ref == RefKind::kSlot && ctx.frame != nullptr) {
        (*ctx.frame)[stmt.slot] = Value(std::move(error_object));
        return ExecBlock(stmt.else_branch, ctx);
      }
      auto catch_scope = std::make_shared<Environment>(ctx.env);
      if (stmt.name_id != kNoNameId) {
        catch_scope->DefineById(stmt.name_id, Value(std::move(error_object)));
      } else {
        catch_scope->Define(stmt.name, Value(std::move(error_object)));
      }
      const ScopeCtx catch_ctx{catch_scope, nullptr};
      return ExecBlock(stmt.else_branch, catch_ctx);
    }
    case StmtKind::kThrow: {
      auto value = Eval(*stmt.expr, ctx);
      if (!value.ok()) return value.error();
      return Raise(stmt.line, "uncaught: " + value->ToDisplayString());
    }
    case StmtKind::kSwitch: {
      auto discriminant = Eval(*stmt.expr, ctx);
      if (!discriminant.ok()) return discriminant.error();
      std::shared_ptr<Environment> scope;
      if (ctx.frame != nullptr) {
        // Reset case-scope slots so fall-through dispatch never sees
        // values from a previous execution of the same switch.
        if (stmt.aux != nullptr) {
          for (const uint16_t s : stmt.aux->scope_slots) {
            (*ctx.frame)[s] = Value();
          }
        }
      } else {
        scope = std::make_shared<Environment>(ctx.env);
      }
      const ScopeCtx switch_ctx{scope ? scope : ctx.env, ctx.frame};
      // Find the matching case (strict equality), else default.
      size_t start = stmt.cases.size();
      size_t default_index = stmt.cases.size();
      for (size_t i = 0; i < stmt.cases.size(); ++i) {
        if (!stmt.cases[i].test) {
          default_index = i;
          continue;
        }
        auto test = Eval(*stmt.cases[i].test, switch_ctx);
        if (!test.ok()) return test.error();
        if (test->StrictEquals(*discriminant)) {
          start = i;
          break;
        }
      }
      if (start == stmt.cases.size()) start = default_index;
      // Fall-through execution until break/return.
      for (size_t i = start; i < stmt.cases.size(); ++i) {
        auto r = ExecBlock(stmt.cases[i].body, switch_ctx);
        if (!r.ok()) return r;
        if (r->flow == Flow::kReturn) return r;
        if (r->flow == Flow::kBreak) return ExecResult{};
        if (r->flow == Flow::kContinue) return r;  // belongs to a loop
      }
      return ExecResult{};
    }
    case StmtKind::kBreak:
      return ExecResult{Flow::kBreak, Value()};
    case StmtKind::kContinue:
      return ExecResult{Flow::kContinue, Value()};
  }
  return Raise(stmt.line, "unhandled statement");
}

Value Interpreter::MakeClosure(const Expr& fn_expr,
                               const std::shared_ptr<Environment>& env) {
  auto fn = std::make_shared<ScriptFunction>();
  fn->name = fn_expr.function_name;
  fn->params = fn_expr.params;
  fn->body = &fn_expr.body;
  fn->owner = current_program_;
  fn->closure = env;
  if (fn_expr.aux != nullptr && fn_expr.aux->slot_mode) {
    fn->slot_mode = true;
    fn->frame_size = fn_expr.aux->frame_size;
    fn->param_slots = &fn_expr.aux->param_slots;
  }
  return Value(std::move(fn));
}

Value* Interpreter::LookupEnv(const Expr& expr, Environment& env) const {
  if (expr.ref == RefKind::kEnv) {
    // Inline cache: if this expression last resolved as a direct
    // binding of this same environment, re-use the binding index. The
    // id check makes a stale hit degrade to a walk, never mis-resolve.
    if (expr.cache_env == &env) {
      if (Value* v = env.ValueAtIfId(expr.cache_index, expr.name_id)) {
        return v;
      }
    }
    const uint32_t index = env.LocalIndexById(expr.name_id);
    if (index != Environment::kNpos) {
      expr.cache_env = &env;
      expr.cache_index = index;
      return env.ValueAtIfId(index, expr.name_id);
    }
    Environment* parent = env.parent().get();
    return parent ? parent->FindById(expr.name_id) : nullptr;
  }
  return env.Find(expr.string_value);
}

const Value* Interpreter::EvalRef(const Expr& expr, const ScopeCtx& ctx) const {
  if (expr.kind != ExprKind::kIdentifier) return nullptr;
  if (expr.ref == RefKind::kSlot && ctx.frame != nullptr) {
    return &(*ctx.frame)[expr.slot];
  }
  return LookupEnv(expr, *ctx.env);
}

namespace {

/// True when evaluating `e` cannot run user code or mutate any binding
/// (it may still raise, which aborts the expression) — the condition
/// under which a pointer obtained from EvalRef before evaluating `e`
/// stays valid. Property reads qualify: vpscript has no getters.
bool IsPureOperand(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kNumber:
    case ExprKind::kString:
    case ExprKind::kBool:
    case ExprKind::kNull:
    case ExprKind::kUndefined:
    case ExprKind::kIdentifier:
      return true;
    case ExprKind::kMember:
      return IsPureOperand(*e.a);
    case ExprKind::kIndex:
      return IsPureOperand(*e.a) && IsPureOperand(*e.b);
    default:
      return false;
  }
}

uint32_t LengthNameId() {
  static const uint32_t id = Interner::Global().Intern("length");
  return id;
}

/// Inlined double⊕double arithmetic/comparison — the overwhelmingly
/// common case in module code. Semantics identical to EvalBinaryOp
/// (for two numbers loose and strict equality coincide, and NaN
/// compares false either way). Returns false for ops that need the
/// generic path (string concat, cross-type equality, …).
inline bool FastNumericBinary(OpCode code, const Value& a, const Value& b,
                              Value* out) {
  if (!a.is_number() || !b.is_number()) return false;
  const double x = a.AsNumber();
  const double y = b.AsNumber();
  switch (code) {
    case OpCode::kAdd: *out = Value(x + y); return true;
    case OpCode::kSub: *out = Value(x - y); return true;
    case OpCode::kMul: *out = Value(x * y); return true;
    case OpCode::kDiv: *out = Value(x / y); return true;
    case OpCode::kMod: *out = Value(std::fmod(x, y)); return true;
    case OpCode::kEq:
    case OpCode::kStrictEq: *out = Value(x == y); return true;
    case OpCode::kNe:
    case OpCode::kStrictNe: *out = Value(x != y); return true;
    case OpCode::kLt: *out = Value(x < y); return true;
    case OpCode::kLe: *out = Value(x <= y); return true;
    case OpCode::kGt: *out = Value(x > y); return true;
    case OpCode::kGe: *out = Value(x >= y); return true;
    default: return false;
  }
}

}  // namespace

Result<Value> Interpreter::Eval(const Expr& expr, const ScopeCtx& ctx) {
  VP_RETURN_IF_ERROR_R(Charge(expr.line));
  switch (expr.kind) {
    case ExprKind::kNumber: return Value(expr.number);
    case ExprKind::kString: return Value(expr.string_value);
    case ExprKind::kBool: return Value(expr.bool_value);
    case ExprKind::kNull: return Value(nullptr);
    case ExprKind::kUndefined: return Value::Undefined();
    case ExprKind::kIdentifier: {
      if (expr.ref == RefKind::kSlot && ctx.frame != nullptr) {
        return (*ctx.frame)[expr.slot];
      }
      Value* v = LookupEnv(expr, *ctx.env);
      if (v == nullptr) {
        return Raise(expr.line, "'" + expr.string_value + "' is not defined");
      }
      return *v;
    }
    case ExprKind::kArrayLiteral: {
      auto arr = std::make_shared<ScriptArray>();
      arr->reserve(expr.elements.size());
      for (const ExprPtr& el : expr.elements) {
        auto v = Eval(*el, ctx);
        if (!v.ok()) return v;
        arr->push_back(std::move(*v));
      }
      return Value(std::move(arr));
    }
    case ExprKind::kObjectLiteral: {
      auto obj = std::make_shared<ScriptObject>();
      for (const auto& prop : expr.properties) {
        auto v = Eval(*prop.value, ctx);
        if (!v.ok()) return v;
        if (prop.key_id != kNoNameId) {
          obj->SetInterned(prop.key_id, prop.key, std::move(*v));
        } else {
          obj->Set(prop.key, std::move(*v));
        }
      }
      return Value(std::move(obj));
    }
    case ExprKind::kUnary: {
      auto operand = Eval(*expr.a, ctx);
      if (!operand.ok()) return operand;
      OpCode code = expr.op_code;
      if (code == OpCode::kNone) {
        if (expr.op == "-") code = OpCode::kNeg;
        else if (expr.op == "+") code = OpCode::kPos;
        else if (expr.op == "!") code = OpCode::kNot;
        else if (expr.op == "typeof") code = OpCode::kTypeof;
      }
      switch (code) {
        case OpCode::kNeg: return Value(-operand->ToNumber());
        case OpCode::kPos: return Value(operand->ToNumber());
        case OpCode::kNot: return Value(!operand->Truthy());
        case OpCode::kTypeof:
          // JS quirks preserved: typeof null == "object", arrays are
          // "object".
          switch (operand->type()) {
            case ValueType::kArray:
            case ValueType::kNull:
              return Value("object");
            default:
              return Value(std::string(ValueTypeName(operand->type())));
          }
        default:
          return Raise(expr.line, "unknown unary operator " + expr.op);
      }
    }
    case ExprKind::kUpdate: {
      double old_num;
      if (const Value* oldp = EvalRef(*expr.a, ctx)) {
        VP_RETURN_IF_ERROR_R(Charge(expr.a->line));
        old_num = oldp->ToNumber();
      } else {
        auto old_value = Eval(*expr.a, ctx);
        if (!old_value.ok()) return old_value;
        old_num = old_value->ToNumber();
      }
      const bool inc = expr.op_code == OpCode::kInc ||
                       (expr.op_code == OpCode::kNone && expr.op == "++");
      const double new_num = inc ? old_num + 1 : old_num - 1;
      auto assigned = Assign(*expr.a, Value(new_num), ctx, expr.line);
      if (!assigned.ok()) return assigned;
      return Value(expr.prefix ? new_num : old_num);
    }
    case ExprKind::kBinary: {
      // Left operand by pointer — only when the right operand cannot
      // mutate bindings (operands evaluate left-to-right, so the left
      // value must predate any mutation the right side performs).
      const Value* ap =
          IsPureOperand(*expr.b) ? EvalRef(*expr.a, ctx) : nullptr;
      Value a_storage;
      if (ap != nullptr) {
        VP_RETURN_IF_ERROR_R(Charge(expr.a->line));
      } else {
        auto a = Eval(*expr.a, ctx);
        if (!a.ok()) return a;
        a_storage = std::move(*a);
        ap = &a_storage;
      }
      // The right operand runs last, so a pointer read needs no guard.
      const Value* bp = EvalRef(*expr.b, ctx);
      Value b_storage;
      if (bp != nullptr) {
        VP_RETURN_IF_ERROR_R(Charge(expr.b->line));
      } else {
        auto b = Eval(*expr.b, ctx);
        if (!b.ok()) return b;
        b_storage = std::move(*b);
        bp = &b_storage;
      }
      const OpCode code = expr.op_code != OpCode::kNone
                              ? expr.op_code
                              : BinaryOpFromSpelling(expr.op);
      Value fast;
      if (FastNumericBinary(code, *ap, *bp, &fast)) return fast;
      auto r = EvalBinaryOp(code, *ap, *bp);
      if (!r.ok()) {
        return Raise(expr.line, "unknown binary operator " + expr.op);
      }
      return r;
    }
    case ExprKind::kLogical: {
      auto a = Eval(*expr.a, ctx);
      if (!a.ok()) return a;
      const bool is_and = expr.op_code == OpCode::kAndAnd ||
                          (expr.op_code == OpCode::kNone && expr.op == "&&");
      if (is_and) {
        if (!a->Truthy()) return a;
        return Eval(*expr.b, ctx);
      }
      // ||
      if (a->Truthy()) return a;
      return Eval(*expr.b, ctx);
    }
    case ExprKind::kConditional: {
      auto cond = Eval(*expr.a, ctx);
      if (!cond.ok()) return cond;
      return Eval(cond->Truthy() ? *expr.b : *expr.c, ctx);
    }
    case ExprKind::kAssign: {
      auto value = Eval(*expr.b, ctx);
      if (!value.ok()) return value;
      OpCode code = expr.op_code;
      if (code == OpCode::kNone && expr.op.size() > 1 && expr.op != "=" &&
          expr.op.back() == '=') {
        code = BinaryOpFromSpelling(expr.op.substr(0, expr.op.size() - 1));
      }
      if (code != OpCode::kNone) {
        // Compound: read old (by pointer when addressable — the rhs
        // already ran, so nothing can move the binding), apply, write.
        const Value* oldp = EvalRef(*expr.a, ctx);
        Value old_storage;
        if (oldp != nullptr) {
          VP_RETURN_IF_ERROR_R(Charge(expr.a->line));
        } else {
          auto old_value = Eval(*expr.a, ctx);
          if (!old_value.ok()) return old_value;
          old_storage = std::move(*old_value);
          oldp = &old_storage;
        }
        Value fast;
        if (FastNumericBinary(code, *oldp, *value, &fast)) {
          value = std::move(fast);
        } else {
          auto combined = EvalBinaryOp(code, *oldp, *value);
          if (!combined.ok()) {
            return Raise(expr.line, "unknown binary operator " + expr.op);
          }
          value = std::move(combined);
        }
      }
      auto r = Assign(*expr.a, *value, ctx, expr.line);
      if (!r.ok()) return r;
      return value;
    }
    case ExprKind::kMember: {
      // Read the base through a pointer when it is a plain identifier:
      // `history.length` then copies no shared_ptr at all.
      const Value* obj_p = EvalRef(*expr.a, ctx);
      Value obj_storage;
      if (obj_p != nullptr) {
        VP_RETURN_IF_ERROR_R(Charge(expr.a->line));
      } else {
        auto obj = Eval(*expr.a, ctx);
        if (!obj.ok()) return obj;
        obj_storage = std::move(*obj);
        obj_p = &obj_storage;
      }
      const Value& obj = *obj_p;
      if (obj.is_nullish()) {
        return Raise(expr.line, "cannot read property '" + expr.string_value +
                                    "' of " +
                                    std::string(ValueTypeName(obj.type())));
      }
      if (obj.is_object() && expr.name_id != kNoNameId) {
        if (Value* v =
                obj.AsObject()->FindInterned(expr.name_id, expr.string_value)) {
          return *v;
        }
        return Value::Undefined();
      }
      if (obj.is_array() && expr.name_id == LengthNameId()) {
        return Value(static_cast<double>(obj.AsArray()->size()));
      }
      return GetProperty(obj, expr.string_value, *this);
    }
    case ExprKind::kIndex: {
      // Pointer-read the base only when evaluating the index cannot
      // run user code (`a[f()]` could reassign `a`, invalidating a
      // pointer into its binding — copy in that case, as before).
      const Value* obj_p =
          IsPureOperand(*expr.b) ? EvalRef(*expr.a, ctx) : nullptr;
      Value obj_storage;
      if (obj_p != nullptr) {
        VP_RETURN_IF_ERROR_R(Charge(expr.a->line));
      } else {
        auto o = Eval(*expr.a, ctx);
        if (!o.ok()) return o;
        obj_storage = std::move(*o);
        obj_p = &obj_storage;
      }
      const Value* idx_p = EvalRef(*expr.b, ctx);
      Value idx_storage;
      if (idx_p != nullptr) {
        VP_RETURN_IF_ERROR_R(Charge(expr.b->line));
      } else {
        auto index = Eval(*expr.b, ctx);
        if (!index.ok()) return index;
        idx_storage = std::move(*index);
        idx_p = &idx_storage;
      }
      const Value& obj = *obj_p;
      const Value& index_v = *idx_p;
      if (obj.is_array()) {
        const double d = index_v.ToNumber();
        if (std::isnan(d)) return Raise(expr.line, "array index is NaN");
        const auto i = static_cast<int64_t>(d);
        const auto& arr = *obj.AsArray();
        if (i < 0 || static_cast<size_t>(i) >= arr.size()) {
          return Value::Undefined();
        }
        return arr[static_cast<size_t>(i)];
      }
      if (obj.is_object()) {
        const std::string key = index_v.ToDisplayString();
        const Value* v = obj.AsObject()->Find(key);
        return v ? *v : Value::Undefined();
      }
      if (obj.is_string()) {
        const auto i = static_cast<int64_t>(index_v.ToNumber());
        const std::string& s = obj.AsString();
        if (i < 0 || static_cast<size_t>(i) >= s.size()) {
          return Value::Undefined();
        }
        return Value(std::string(1, s[static_cast<size_t>(i)]));
      }
      return Raise(expr.line, "cannot index a " +
                                  std::string(ValueTypeName(obj.type())));
    }
    case ExprKind::kCall:
      return EvalCall(expr, ctx);
    case ExprKind::kFunction:
      return MakeClosure(expr, ctx.env);
  }
  return Raise(expr.line, "unhandled expression");
}

Result<Value> Interpreter::EvalCall(const Expr& expr, const ScopeCtx& ctx) {
  const Expr& callee_expr = *expr.a;
  Value callee;
  std::shared_ptr<ScriptArray> receiver;  // array.method(...) fast path
  if (callee_expr.kind == ExprKind::kMember &&
      callee_expr.name_id != kNoNameId) {
    // Inlined member evaluation so `arr.push(x)` can dispatch straight
    // to the builtin instead of materializing a bound method Value.
    // The receiver / callee is copied out of the binding before the
    // arguments run, so an argument reassigning the base stays safe.
    VP_RETURN_IF_ERROR_R(Charge(callee_expr.line));
    const Value* obj_p = EvalRef(*callee_expr.a, ctx);
    Value obj_storage;
    if (obj_p != nullptr) {
      VP_RETURN_IF_ERROR_R(Charge(callee_expr.a->line));
    } else {
      auto obj = Eval(*callee_expr.a, ctx);
      if (!obj.ok()) return obj;
      obj_storage = std::move(*obj);
      obj_p = &obj_storage;
    }
    const Value& obj = *obj_p;
    if (obj.is_nullish()) {
      return Raise(callee_expr.line,
                   "cannot read property '" + callee_expr.string_value +
                       "' of " + std::string(ValueTypeName(obj.type())));
    }
    if (obj.is_array()) {
      receiver = obj.AsArray();
    } else if (obj.is_object()) {
      Value* v = obj.AsObject()->FindInterned(callee_expr.name_id,
                                              callee_expr.string_value);
      if (v != nullptr) callee = *v;
    } else {
      auto prop = GetProperty(obj, callee_expr.string_value, *this);
      if (!prop.ok()) return prop;
      callee = std::move(*prop);
    }
  } else {
    auto c = Eval(callee_expr, ctx);
    if (!c.ok()) return c;
    callee = std::move(*c);
  }
  std::vector<Value> args = AcquireArgs(expr.elements.size());
  for (const ExprPtr& arg : expr.elements) {
    auto v = Eval(*arg, ctx);
    if (!v.ok()) return v;
    args.push_back(std::move(*v));
  }
  Result<Value> result = Value::Undefined();
  if (receiver != nullptr &&
      CallArrayMethod(receiver, callee_expr.name_id, args, *this, &result)) {
    // dispatched without a bound-method allocation
    ReleaseArgs(std::move(args));
  } else {
    if (receiver != nullptr) {
      // Not a builtin method id (e.g. `arr.length()`): fall back to
      // the property path for seed-identical error behavior.
      auto prop = GetProperty(Value(receiver), callee_expr.string_value, *this);
      if (!prop.ok()) return prop;
      callee = std::move(*prop);
    }
    result = Call(callee, std::move(args));
  }
  if (!result.ok()) {
    // Annotate with the call site line once (keeps traces short), but
    // keep the original status code: a host failure such as UNAVAILABLE
    // must stay catchable as that code, not collapse to SCRIPT_ERROR.
    const std::string& msg = result.error().message();
    if (msg.find("script:") == std::string::npos) {
      return Error(result.error().code(),
                   Format("script:%d: %s", expr.line, msg.c_str()));
    }
  }
  return result;
}

Result<Value> EvalBinaryOp(OpCode op, const Value& a, const Value& b) {
  switch (op) {
    case OpCode::kAdd:
      if (a.is_string() || b.is_string()) {
        return Value(a.ToDisplayString() + b.ToDisplayString());
      }
      return Value(a.ToNumber() + b.ToNumber());
    case OpCode::kSub: return Value(a.ToNumber() - b.ToNumber());
    case OpCode::kMul: return Value(a.ToNumber() * b.ToNumber());
    case OpCode::kDiv: return Value(a.ToNumber() / b.ToNumber());
    case OpCode::kMod:
      return Value(std::fmod(a.ToNumber(), b.ToNumber()));
    case OpCode::kEq: return Value(a.LooseEquals(b));
    case OpCode::kNe: return Value(!a.LooseEquals(b));
    case OpCode::kStrictEq: return Value(a.StrictEquals(b));
    case OpCode::kStrictNe: return Value(!a.StrictEquals(b));
    case OpCode::kLt:
    case OpCode::kLe:
    case OpCode::kGt:
    case OpCode::kGe: {
      if (a.is_string() && b.is_string()) {
        const int cmp = a.AsString().compare(b.AsString());
        switch (op) {
          case OpCode::kLt: return Value(cmp < 0);
          case OpCode::kLe: return Value(cmp <= 0);
          case OpCode::kGt: return Value(cmp > 0);
          default: return Value(cmp >= 0);
        }
      }
      const double x = a.ToNumber();
      const double y = b.ToNumber();
      switch (op) {
        case OpCode::kLt: return Value(x < y);
        case OpCode::kLe: return Value(x <= y);
        case OpCode::kGt: return Value(x > y);
        default: return Value(x >= y);
      }
    }
    default:
      return ScriptError("unknown binary operator");
  }
}

Result<Value> Interpreter::Assign(const Expr& target, Value value,
                                  const ScopeCtx& ctx, int line) {
  switch (target.kind) {
    case ExprKind::kIdentifier: {
      if (target.ref == RefKind::kSlot && ctx.frame != nullptr) {
        if (target.const_slot) {
          return Raise(line,
                       "assignment to const '" + target.string_value + "'");
        }
        (*ctx.frame)[target.slot] = value;
        return value;
      }
      if (target.ref == RefKind::kEnv) {
        Status s = ctx.env->AssignById(target.name_id, value);
        if (!s.ok()) return Raise(line, s.message());
        return value;
      }
      Status s = ctx.env->Assign(target.string_value, value);
      if (!s.ok()) return Raise(line, s.message());
      return value;
    }
    case ExprKind::kMember: {
      auto obj = Eval(*target.a, ctx);
      if (!obj.ok()) return obj;
      if (!obj->is_object()) {
        return Raise(line, "cannot set property '" + target.string_value +
                               "' on a " +
                               std::string(ValueTypeName(obj->type())));
      }
      if (target.name_id != kNoNameId) {
        obj->AsObject()->SetInterned(target.name_id, target.string_value,
                                     value);
      } else {
        obj->AsObject()->Set(target.string_value, value);
      }
      return value;
    }
    case ExprKind::kIndex: {
      auto obj = Eval(*target.a, ctx);
      if (!obj.ok()) return obj;
      auto index = Eval(*target.b, ctx);
      if (!index.ok()) return index;
      if (obj->is_array()) {
        const double d = index->ToNumber();
        if (std::isnan(d) || d < 0) {
          return Raise(line, "bad array index");
        }
        auto& arr = *obj->AsArray();
        const auto i = static_cast<size_t>(d);
        if (i >= arr.size()) arr.resize(i + 1);
        arr[i] = value;
        return value;
      }
      if (obj->is_object()) {
        obj->AsObject()->Set(index->ToDisplayString(), value);
        return value;
      }
      return Raise(line, "cannot index-assign a " +
                             std::string(ValueTypeName(obj->type())));
    }
    default:
      return Raise(line, "invalid assignment target");
  }
}

}  // namespace vp::script
