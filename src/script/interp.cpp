#include "script/interp.hpp"

#include <cmath>

#include "common/log.hpp"
#include "common/strings.hpp"

namespace vp::script {

Interpreter::Interpreter(std::shared_ptr<Environment> globals,
                         InterpreterLimits limits)
    : globals_(std::move(globals)), limits_(limits) {
  print_ = [](const std::string& line) { VP_INFO("script") << line; };
}

void Interpreter::Print(const std::string& line) {
  if (print_) print_(line);
}

Status Interpreter::Charge(int line) {
  if (++steps_used_ > limits_.max_steps) {
    return Status(StatusCode::kResourceExhausted,
                  Format("script:%d: step budget exceeded (%llu steps)", line,
                         static_cast<unsigned long long>(limits_.max_steps)));
  }
  return Status::Ok();
}

Error Interpreter::Raise(int line, const std::string& what) const {
  return ScriptError(Format("script:%d: %s", line, what.c_str()));
}

Result<Value> Interpreter::RunProgram(
    const std::shared_ptr<Program>& program) {
  current_program_ = program;
  // Hoist function declarations.
  for (const StmtPtr& stmt : program->statements) {
    if (stmt->kind == StmtKind::kFunction) {
      auto fn = std::make_shared<ScriptFunction>();
      fn->name = stmt->name;
      fn->params = stmt->params;
      fn->body = &stmt->body;
      fn->owner = program;
      fn->closure = globals_;
      globals_->Define(stmt->name, Value(std::move(fn)));
    }
  }
  Value last;
  for (const StmtPtr& stmt : program->statements) {
    if (stmt->kind == StmtKind::kFunction) continue;  // already hoisted
    auto r = ExecStmt(*stmt, globals_);
    if (!r.ok()) return r.error();
    if (r->flow == Flow::kReturn) return r->value;
    if (r->flow != Flow::kNormal) {
      return Raise(stmt->line, "break/continue outside a loop");
    }
    last = r->value;
  }
  return last;
}

Result<Value> Interpreter::Call(const Value& fn, std::vector<Value> args) {
  if (fn.type() == ValueType::kHostFunction) {
    return fn.AsHostFunction()->fn(args, *this);
  }
  if (fn.type() != ValueType::kFunction) {
    return ScriptError("attempt to call a " +
                       std::string(ValueTypeName(fn.type())));
  }
  if (call_depth_ >= limits_.max_call_depth) {
    return ScriptError(Format("call depth limit (%d) exceeded",
                              limits_.max_call_depth));
  }
  const auto& def = fn.AsFunction();
  auto env = std::make_shared<Environment>(def->closure);
  // Named function expressions can refer to themselves by name.
  if (!def->name.empty() && env->Find(def->name) == nullptr) {
    env->Define(def->name, fn);
  }
  for (size_t i = 0; i < def->params.size(); ++i) {
    env->Define(def->params[i],
                i < args.size() ? std::move(args[i]) : Value::Undefined());
  }
  ++call_depth_;
  auto r = ExecBlock(*def->body, env);
  --call_depth_;
  if (!r.ok()) return r.error();
  if (r->flow == Flow::kReturn) return r->value;
  return Value::Undefined();
}

Result<Interpreter::ExecResult> Interpreter::ExecBlock(
    const std::vector<StmtPtr>& stmts,
    const std::shared_ptr<Environment>& env) {
  // Hoist function declarations within the block.
  for (const StmtPtr& stmt : stmts) {
    if (stmt->kind == StmtKind::kFunction) {
      auto fn = std::make_shared<ScriptFunction>();
      fn->name = stmt->name;
      fn->params = stmt->params;
      fn->body = &stmt->body;
      fn->owner = current_program_;
      fn->closure = env;
      env->Define(stmt->name, Value(std::move(fn)));
    }
  }
  for (const StmtPtr& stmt : stmts) {
    if (stmt->kind == StmtKind::kFunction) continue;
    auto r = ExecStmt(*stmt, env);
    if (!r.ok()) return r;
    if (r->flow != Flow::kNormal) return r;
  }
  return ExecResult{};
}

Result<Interpreter::ExecResult> Interpreter::ExecStmt(
    const Stmt& stmt, const std::shared_ptr<Environment>& env) {
  VP_RETURN_IF_ERROR_R(Charge(stmt.line));
  switch (stmt.kind) {
    case StmtKind::kExpr: {
      auto v = Eval(*stmt.expr, env);
      if (!v.ok()) return v.error();
      return ExecResult{Flow::kNormal, std::move(*v)};
    }
    case StmtKind::kVarDecl: {
      Value init;
      if (stmt.expr) {
        auto v = Eval(*stmt.expr, env);
        if (!v.ok()) return v.error();
        init = std::move(*v);
      }
      env->Define(stmt.name, std::move(init), stmt.is_const);
      return ExecResult{};
    }
    case StmtKind::kFunction: {
      // Non-hoisted path (e.g. function declared inside `if`).
      auto fn = std::make_shared<ScriptFunction>();
      fn->name = stmt.name;
      fn->params = stmt.params;
      fn->body = &stmt.body;
      fn->owner = current_program_;
      fn->closure = env;
      env->Define(stmt.name, Value(std::move(fn)));
      return ExecResult{};
    }
    case StmtKind::kReturn: {
      Value v;
      if (stmt.expr) {
        auto r = Eval(*stmt.expr, env);
        if (!r.ok()) return r.error();
        v = std::move(*r);
      }
      return ExecResult{Flow::kReturn, std::move(v)};
    }
    case StmtKind::kIf: {
      auto cond = Eval(*stmt.expr, env);
      if (!cond.ok()) return cond.error();
      auto scope = std::make_shared<Environment>(env);
      if (cond->Truthy()) return ExecBlock(stmt.then_branch, scope);
      return ExecBlock(stmt.else_branch, scope);
    }
    case StmtKind::kWhile: {
      while (true) {
        VP_RETURN_IF_ERROR_R(Charge(stmt.line));
        auto cond = Eval(*stmt.expr, env);
        if (!cond.ok()) return cond.error();
        if (!cond->Truthy()) break;
        auto scope = std::make_shared<Environment>(env);
        auto r = ExecBlock(stmt.body, scope);
        if (!r.ok()) return r;
        if (r->flow == Flow::kReturn) return r;
        if (r->flow == Flow::kBreak) break;
      }
      return ExecResult{};
    }
    case StmtKind::kFor: {
      auto loop_env = std::make_shared<Environment>(env);
      if (stmt.init) {
        auto r = ExecStmt(*stmt.init, loop_env);
        if (!r.ok()) return r;
      }
      while (true) {
        VP_RETURN_IF_ERROR_R(Charge(stmt.line));
        if (stmt.condition) {
          auto cond = Eval(*stmt.condition, loop_env);
          if (!cond.ok()) return cond.error();
          if (!cond->Truthy()) break;
        }
        auto scope = std::make_shared<Environment>(loop_env);
        auto r = ExecBlock(stmt.body, scope);
        if (!r.ok()) return r;
        if (r->flow == Flow::kReturn) return r;
        if (r->flow == Flow::kBreak) break;
        if (stmt.step) {
          auto s = Eval(*stmt.step, loop_env);
          if (!s.ok()) return s.error();
        }
      }
      return ExecResult{};
    }
    case StmtKind::kForIn: {
      auto obj = Eval(*stmt.expr, env);
      if (!obj.ok()) return obj.error();
      std::vector<std::string> keys;
      if (obj->is_object()) {
        for (const auto& [k, v] : obj->AsObject()->items()) keys.push_back(k);
      } else if (obj->is_array()) {
        for (size_t i = 0; i < obj->AsArray()->size(); ++i) {
          keys.push_back(Format("%zu", i));
        }
      } else {
        return Raise(stmt.line, "for-in over a non-object");
      }
      for (const auto& key : keys) {
        VP_RETURN_IF_ERROR_R(Charge(stmt.line));
        auto scope = std::make_shared<Environment>(env);
        scope->Define(stmt.name, Value(key));
        auto r = ExecBlock(stmt.body, scope);
        if (!r.ok()) return r;
        if (r->flow == Flow::kReturn) return r;
        if (r->flow == Flow::kBreak) break;
      }
      return ExecResult{};
    }
    case StmtKind::kBlock: {
      auto scope = std::make_shared<Environment>(env);
      return ExecBlock(stmt.body, scope);
    }
    case StmtKind::kDoWhile: {
      while (true) {
        VP_RETURN_IF_ERROR_R(Charge(stmt.line));
        auto scope = std::make_shared<Environment>(env);
        auto r = ExecBlock(stmt.body, scope);
        if (!r.ok()) return r;
        if (r->flow == Flow::kReturn) return r;
        if (r->flow == Flow::kBreak) break;
        auto cond = Eval(*stmt.expr, env);
        if (!cond.ok()) return cond.error();
        if (!cond->Truthy()) break;
      }
      return ExecResult{};
    }
    case StmtKind::kTry: {
      auto scope = std::make_shared<Environment>(env);
      auto r = ExecBlock(stmt.body, scope);
      if (r.ok()) return r;
      // Budget/depth exhaustion is not catchable — a runaway module
      // must not catch its own kill signal.
      if (r.error().code() == StatusCode::kResourceExhausted) {
        return r;
      }
      auto catch_scope = std::make_shared<Environment>(env);
      auto error_object = std::make_shared<ScriptObject>();
      error_object->Set("message", Value(r.error().message()));
      error_object->Set("code",
                        Value(std::string(StatusCodeName(r.error().code()))));
      catch_scope->Define(stmt.name, Value(std::move(error_object)));
      return ExecBlock(stmt.else_branch, catch_scope);
    }
    case StmtKind::kThrow: {
      auto value = Eval(*stmt.expr, env);
      if (!value.ok()) return value.error();
      return Raise(stmt.line, "uncaught: " + value->ToDisplayString());
    }
    case StmtKind::kSwitch: {
      auto discriminant = Eval(*stmt.expr, env);
      if (!discriminant.ok()) return discriminant.error();
      auto scope = std::make_shared<Environment>(env);
      // Find the matching case (strict equality), else default.
      size_t start = stmt.cases.size();
      size_t default_index = stmt.cases.size();
      for (size_t i = 0; i < stmt.cases.size(); ++i) {
        if (!stmt.cases[i].test) {
          default_index = i;
          continue;
        }
        auto test = Eval(*stmt.cases[i].test, scope);
        if (!test.ok()) return test.error();
        if (test->StrictEquals(*discriminant)) {
          start = i;
          break;
        }
      }
      if (start == stmt.cases.size()) start = default_index;
      // Fall-through execution until break/return.
      for (size_t i = start; i < stmt.cases.size(); ++i) {
        auto r = ExecBlock(stmt.cases[i].body, scope);
        if (!r.ok()) return r;
        if (r->flow == Flow::kReturn) return r;
        if (r->flow == Flow::kBreak) return ExecResult{};
        if (r->flow == Flow::kContinue) return r;  // belongs to a loop
      }
      return ExecResult{};
    }
    case StmtKind::kBreak:
      return ExecResult{Flow::kBreak, Value()};
    case StmtKind::kContinue:
      return ExecResult{Flow::kContinue, Value()};
  }
  return Raise(stmt.line, "unhandled statement");
}

Value Interpreter::MakeClosure(const Expr& fn_expr,
                               const std::shared_ptr<Environment>& env) {
  auto fn = std::make_shared<ScriptFunction>();
  fn->name = fn_expr.function_name;
  fn->params = fn_expr.params;
  fn->body = &fn_expr.body;
  fn->owner = current_program_;
  fn->closure = env;
  return Value(std::move(fn));
}

Result<Value> Interpreter::Eval(const Expr& expr,
                                const std::shared_ptr<Environment>& env) {
  VP_RETURN_IF_ERROR_R(Charge(expr.line));
  switch (expr.kind) {
    case ExprKind::kNumber: return Value(expr.number);
    case ExprKind::kString: return Value(expr.string_value);
    case ExprKind::kBool: return Value(expr.bool_value);
    case ExprKind::kNull: return Value(nullptr);
    case ExprKind::kUndefined: return Value::Undefined();
    case ExprKind::kIdentifier: {
      Value* v = env->Find(expr.string_value);
      if (v == nullptr) {
        return Raise(expr.line, "'" + expr.string_value + "' is not defined");
      }
      return *v;
    }
    case ExprKind::kArrayLiteral: {
      auto arr = std::make_shared<ScriptArray>();
      arr->reserve(expr.elements.size());
      for (const ExprPtr& el : expr.elements) {
        auto v = Eval(*el, env);
        if (!v.ok()) return v;
        arr->push_back(std::move(*v));
      }
      return Value(std::move(arr));
    }
    case ExprKind::kObjectLiteral: {
      auto obj = std::make_shared<ScriptObject>();
      for (const auto& [key, value_expr] : expr.properties) {
        auto v = Eval(*value_expr, env);
        if (!v.ok()) return v;
        obj->Set(key, std::move(*v));
      }
      return Value(std::move(obj));
    }
    case ExprKind::kUnary: {
      auto operand = Eval(*expr.a, env);
      if (!operand.ok()) return operand;
      if (expr.op == "-") return Value(-operand->ToNumber());
      if (expr.op == "+") return Value(operand->ToNumber());
      if (expr.op == "!") return Value(!operand->Truthy());
      if (expr.op == "typeof") {
        // JS quirks preserved: typeof null == "object", arrays are
        // "object".
        switch (operand->type()) {
          case ValueType::kArray:
          case ValueType::kNull:
            return Value("object");
          default:
            return Value(std::string(ValueTypeName(operand->type())));
        }
      }
      return Raise(expr.line, "unknown unary operator " + expr.op);
    }
    case ExprKind::kUpdate: {
      auto old_value = Eval(*expr.a, env);
      if (!old_value.ok()) return old_value;
      const double old_num = old_value->ToNumber();
      const double new_num = expr.op == "++" ? old_num + 1 : old_num - 1;
      auto assigned = Assign(*expr.a, Value(new_num), env, expr.line);
      if (!assigned.ok()) return assigned;
      return Value(expr.prefix ? new_num : old_num);
    }
    case ExprKind::kBinary: {
      auto a = Eval(*expr.a, env);
      if (!a.ok()) return a;
      auto b = Eval(*expr.b, env);
      if (!b.ok()) return b;
      return EvalBinary(expr.op, *a, *b, expr.line);
    }
    case ExprKind::kLogical: {
      auto a = Eval(*expr.a, env);
      if (!a.ok()) return a;
      if (expr.op == "&&") {
        if (!a->Truthy()) return a;
        return Eval(*expr.b, env);
      }
      // ||
      if (a->Truthy()) return a;
      return Eval(*expr.b, env);
    }
    case ExprKind::kConditional: {
      auto cond = Eval(*expr.a, env);
      if (!cond.ok()) return cond;
      return Eval(cond->Truthy() ? *expr.b : *expr.c, env);
    }
    case ExprKind::kAssign: {
      auto value = Eval(*expr.b, env);
      if (!value.ok()) return value;
      if (expr.op != "=") {
        // Compound: read old, apply op, write.
        auto old_value = Eval(*expr.a, env);
        if (!old_value.ok()) return old_value;
        const std::string binop = expr.op.substr(0, 1);  // "+=" → "+"
        auto combined = EvalBinary(binop, *old_value, *value, expr.line);
        if (!combined.ok()) return combined;
        value = std::move(combined);
      }
      auto r = Assign(*expr.a, *value, env, expr.line);
      if (!r.ok()) return r;
      return value;
    }
    case ExprKind::kMember: {
      auto obj = Eval(*expr.a, env);
      if (!obj.ok()) return obj;
      if (obj->is_nullish()) {
        return Raise(expr.line, "cannot read property '" + expr.string_value +
                                    "' of " +
                                    std::string(ValueTypeName(obj->type())));
      }
      return GetProperty(*obj, expr.string_value, *this);
    }
    case ExprKind::kIndex: {
      auto obj = Eval(*expr.a, env);
      if (!obj.ok()) return obj;
      auto index = Eval(*expr.b, env);
      if (!index.ok()) return index;
      if (obj->is_array()) {
        const double d = index->ToNumber();
        if (std::isnan(d)) return Raise(expr.line, "array index is NaN");
        const auto i = static_cast<int64_t>(d);
        const auto& arr = *obj->AsArray();
        if (i < 0 || static_cast<size_t>(i) >= arr.size()) {
          return Value::Undefined();
        }
        return arr[static_cast<size_t>(i)];
      }
      if (obj->is_object()) {
        const std::string key = index->ToDisplayString();
        const Value* v = obj->AsObject()->Find(key);
        return v ? *v : Value::Undefined();
      }
      if (obj->is_string()) {
        const auto i = static_cast<int64_t>(index->ToNumber());
        const std::string& s = obj->AsString();
        if (i < 0 || static_cast<size_t>(i) >= s.size()) {
          return Value::Undefined();
        }
        return Value(std::string(1, s[static_cast<size_t>(i)]));
      }
      return Raise(expr.line, "cannot index a " +
                                  std::string(ValueTypeName(obj->type())));
    }
    case ExprKind::kCall:
      return EvalCall(expr, env);
    case ExprKind::kFunction:
      return MakeClosure(expr, env);
  }
  return Raise(expr.line, "unhandled expression");
}

Result<Value> Interpreter::EvalCall(const Expr& expr,
                                    const std::shared_ptr<Environment>& env) {
  auto callee = Eval(*expr.a, env);
  if (!callee.ok()) return callee;
  std::vector<Value> args;
  args.reserve(expr.elements.size());
  for (const ExprPtr& arg : expr.elements) {
    auto v = Eval(*arg, env);
    if (!v.ok()) return v;
    args.push_back(std::move(*v));
  }
  auto result = Call(*callee, std::move(args));
  if (!result.ok()) {
    // Annotate with the call site line once (keeps traces short), but
    // keep the original status code: a host failure such as UNAVAILABLE
    // must stay catchable as that code, not collapse to SCRIPT_ERROR.
    const std::string& msg = result.error().message();
    if (msg.find("script:") == std::string::npos) {
      return Error(result.error().code(),
                   Format("script:%d: %s", expr.line, msg.c_str()));
    }
  }
  return result;
}

Result<Value> Interpreter::EvalBinary(const std::string& op, const Value& a,
                                      const Value& b, int line) {
  if (op == "+") {
    if (a.is_string() || b.is_string()) {
      return Value(a.ToDisplayString() + b.ToDisplayString());
    }
    return Value(a.ToNumber() + b.ToNumber());
  }
  if (op == "-") return Value(a.ToNumber() - b.ToNumber());
  if (op == "*") return Value(a.ToNumber() * b.ToNumber());
  if (op == "/") return Value(a.ToNumber() / b.ToNumber());
  if (op == "%") return Value(std::fmod(a.ToNumber(), b.ToNumber()));
  if (op == "==") return Value(a.LooseEquals(b));
  if (op == "!=") return Value(!a.LooseEquals(b));
  if (op == "===") return Value(a.StrictEquals(b));
  if (op == "!==") return Value(!a.StrictEquals(b));
  if (op == "<" || op == "<=" || op == ">" || op == ">=") {
    if (a.is_string() && b.is_string()) {
      const int cmp = a.AsString().compare(b.AsString());
      if (op == "<") return Value(cmp < 0);
      if (op == "<=") return Value(cmp <= 0);
      if (op == ">") return Value(cmp > 0);
      return Value(cmp >= 0);
    }
    const double x = a.ToNumber();
    const double y = b.ToNumber();
    if (op == "<") return Value(x < y);
    if (op == "<=") return Value(x <= y);
    if (op == ">") return Value(x > y);
    return Value(x >= y);
  }
  return Raise(line, "unknown binary operator " + op);
}

Result<Value> Interpreter::Assign(const Expr& target, Value value,
                                  const std::shared_ptr<Environment>& env,
                                  int line) {
  switch (target.kind) {
    case ExprKind::kIdentifier: {
      Status s = env->Assign(target.string_value, value);
      if (!s.ok()) return Raise(line, s.message());
      return value;
    }
    case ExprKind::kMember: {
      auto obj = Eval(*target.a, env);
      if (!obj.ok()) return obj;
      if (!obj->is_object()) {
        return Raise(line, "cannot set property '" + target.string_value +
                               "' on a " +
                               std::string(ValueTypeName(obj->type())));
      }
      obj->AsObject()->Set(target.string_value, value);
      return value;
    }
    case ExprKind::kIndex: {
      auto obj = Eval(*target.a, env);
      if (!obj.ok()) return obj;
      auto index = Eval(*target.b, env);
      if (!index.ok()) return index;
      if (obj->is_array()) {
        const double d = index->ToNumber();
        if (std::isnan(d) || d < 0) {
          return Raise(line, "bad array index");
        }
        auto& arr = *obj->AsArray();
        const auto i = static_cast<size_t>(d);
        if (i >= arr.size()) arr.resize(i + 1);
        arr[i] = value;
        return value;
      }
      if (obj->is_object()) {
        obj->AsObject()->Set(index->ToDisplayString(), value);
        return value;
      }
      return Raise(line, "cannot index-assign a " +
                             std::string(ValueTypeName(obj->type())));
    }
    default:
      return Raise(line, "invalid assignment target");
  }
}

}  // namespace vp::script
