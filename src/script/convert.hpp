// Conversions between JSON documents and vpscript values.
//
// Messages arriving at a module (net::Message payloads) are JSON; the
// runtime converts them to script values before invoking
// event_received, and converts call_module/call_service arguments back
// to JSON on the way out.
#pragma once

#include "common/error.hpp"
#include "json/value.hpp"
#include "script/value.hpp"

namespace vp::script {

/// JSON → script (total).
Value JsonToScript(const json::Value& v);

/// Script → JSON. Functions and undefined inside containers are
/// rejected (kScriptError) — they cannot travel over the wire.
Result<json::Value> ScriptToJson(const Value& v);

}  // namespace vp::script
