#include "script/value.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vp::script {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kUndefined: return "undefined";
    case ValueType::kNull: return "null";
    case ValueType::kBool: return "boolean";
    case ValueType::kNumber: return "number";
    case ValueType::kString: return "string";
    case ValueType::kObject: return "object";
    case ValueType::kArray: return "array";
    case ValueType::kFunction: return "function";
    case ValueType::kHostFunction: return "function";
  }
  return "?";
}

Value* ScriptObject::Find(const std::string& key) {
  for (auto& [k, v] : items_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value* ScriptObject::Find(const std::string& key) const {
  for (const auto& [k, v] : items_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void ScriptObject::Set(const std::string& key, Value v) {
  if (Value* existing = Find(key)) {
    *existing = std::move(v);
    return;
  }
  items_.emplace_back(key, std::move(v));
}

bool ScriptObject::Erase(const std::string& key) {
  for (auto it = items_.begin(); it != items_.end(); ++it) {
    if (it->first == key) {
      items_.erase(it);
      return true;
    }
  }
  return false;
}

Value Value::MakeHostFunction(std::string name, HostFunction fn) {
  auto hf = std::make_shared<HostFunctionValue>();
  hf->name = std::move(name);
  hf->fn = std::move(fn);
  return Value(std::move(hf));
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0: return ValueType::kUndefined;
    case 1: return ValueType::kNull;
    case 2: return ValueType::kBool;
    case 3: return ValueType::kNumber;
    case 4: return ValueType::kString;
    case 5: return ValueType::kObject;
    case 6: return ValueType::kArray;
    case 7: return ValueType::kFunction;
    default: return ValueType::kHostFunction;
  }
}

bool Value::Truthy() const {
  switch (type()) {
    case ValueType::kUndefined:
    case ValueType::kNull:
      return false;
    case ValueType::kBool:
      return AsBool();
    case ValueType::kNumber: {
      const double d = AsNumber();
      return d != 0.0 && !std::isnan(d);
    }
    case ValueType::kString:
      return !AsString().empty();
    default:
      return true;
  }
}

namespace {
std::string NumberToString(double d) {
  if (std::isnan(d)) return "NaN";
  if (std::isinf(d)) return d > 0 ? "Infinity" : "-Infinity";
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g", d);
  return buf;
}
}  // namespace

std::string Value::ToDisplayString() const {
  switch (type()) {
    case ValueType::kUndefined: return "undefined";
    case ValueType::kNull: return "null";
    case ValueType::kBool: return AsBool() ? "true" : "false";
    case ValueType::kNumber: return NumberToString(AsNumber());
    case ValueType::kString: return AsString();
    case ValueType::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : AsObject()->items()) {
        if (!first) out += ", ";
        first = false;
        out += k + ": " + (v.is_string() ? "\"" + v.AsString() + "\""
                                         : v.ToDisplayString());
      }
      return out + "}";
    }
    case ValueType::kArray: {
      std::string out = "[";
      bool first = true;
      for (const auto& v : *AsArray()) {
        if (!first) out += ", ";
        first = false;
        out += v.is_string() ? "\"" + v.AsString() + "\""
                             : v.ToDisplayString();
      }
      return out + "]";
    }
    case ValueType::kFunction:
      return "function " + AsFunction()->name + "() { … }";
    case ValueType::kHostFunction:
      return "function " + AsHostFunction()->name + "() { [native] }";
  }
  return "?";
}

double Value::ToNumber() const {
  switch (type()) {
    case ValueType::kUndefined: return std::nan("");
    case ValueType::kNull: return 0.0;
    case ValueType::kBool: return AsBool() ? 1.0 : 0.0;
    case ValueType::kNumber: return AsNumber();
    case ValueType::kString: {
      const std::string& s = AsString();
      if (s.empty()) return 0.0;
      char* end = nullptr;
      const double v = std::strtod(s.c_str(), &end);
      // Trailing whitespace is tolerated; other junk → NaN.
      while (end && *end == ' ') ++end;
      if (end != s.c_str() + s.size()) return std::nan("");
      return v;
    }
    default:
      return std::nan("");
  }
}

bool Value::StrictEquals(const Value& o) const {
  if (type() != o.type()) return false;
  switch (type()) {
    case ValueType::kUndefined:
    case ValueType::kNull:
      return true;
    case ValueType::kBool:
      return AsBool() == o.AsBool();
    case ValueType::kNumber:
      return AsNumber() == o.AsNumber();
    case ValueType::kString:
      return AsString() == o.AsString();
    case ValueType::kObject:
      return AsObject() == o.AsObject();
    case ValueType::kArray:
      return AsArray() == o.AsArray();
    case ValueType::kFunction:
      return AsFunction() == o.AsFunction();
    case ValueType::kHostFunction:
      return AsHostFunction() == o.AsHostFunction();
  }
  return false;
}

bool Value::LooseEquals(const Value& o) const {
  if (type() == o.type()) return StrictEquals(o);
  if (is_nullish() && o.is_nullish()) return true;
  // number <-> string coercion
  if ((is_number() && o.is_string()) || (is_string() && o.is_number())) {
    return ToNumber() == o.ToNumber();
  }
  // bool coerces to number
  if (is_bool()) return Value(ToNumber()).LooseEquals(o);
  if (o.is_bool()) return LooseEquals(Value(o.ToNumber()));
  return false;
}

void Environment::Define(const std::string& name, Value v, bool is_const) {
  for (auto& [n, binding] : bindings_) {
    if (n == name) {
      binding.value = std::move(v);
      binding.is_const = is_const;
      return;
    }
  }
  bindings_.emplace_back(name, Binding{std::move(v), is_const});
}

Value* Environment::Find(const std::string& name) {
  for (auto& [n, binding] : bindings_) {
    if (n == name) return &binding.value;
  }
  return parent_ ? parent_->Find(name) : nullptr;
}

Status Environment::Assign(const std::string& name, Value v) {
  for (auto& [n, binding] : bindings_) {
    if (n == name) {
      if (binding.is_const) {
        return Status(StatusCode::kScriptError,
                      "assignment to const '" + name + "'");
      }
      binding.value = std::move(v);
      return Status::Ok();
    }
  }
  if (parent_) return parent_->Assign(name, std::move(v));
  return Status(StatusCode::kScriptError,
                "assignment to undeclared variable '" + name + "'");
}

std::vector<std::string> Environment::LocalNames() const {
  std::vector<std::string> names;
  names.reserve(bindings_.size());
  for (const auto& [name, binding] : bindings_) names.push_back(name);
  return names;
}

bool Environment::IsConst(const std::string& name) const {
  for (const auto& [n, binding] : bindings_) {
    if (n == name) return binding.is_const;
  }
  return parent_ ? parent_->IsConst(name) : false;
}

}  // namespace vp::script
