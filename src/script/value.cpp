#include "script/value.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_set>

namespace vp::script {

namespace {
std::atomic<size_t> g_live_environments{0};

// Registry of every live Environment. Teardown must find closure
// cycles that are no longer reachable from any root (a module that
// overwrites registry["x"] orphans the old handler<->dispatch cycle),
// so walking binding values from the root cannot be complete; instead
// we enumerate all live environments and select by ownership. Leaked
// intentionally (function-local static pointer) so environments
// destroyed during process teardown never race its destruction.
std::mutex g_env_registry_mutex;
std::unordered_set<Environment*>& EnvRegistry() {
  static auto* registry = new std::unordered_set<Environment*>();
  return *registry;
}
}  // namespace

Environment::Environment(std::shared_ptr<Environment> parent)
    : parent_(std::move(parent)) {
  g_live_environments.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_env_registry_mutex);
  EnvRegistry().insert(this);
}

Environment::~Environment() {
  g_live_environments.fetch_sub(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_env_registry_mutex);
  EnvRegistry().erase(this);
}

size_t Environment::live_count() {
  return g_live_environments.load(std::memory_order_relaxed);
}

void Environment::TearDownChain(const std::shared_ptr<Environment>& root) {
  if (root == nullptr) return;
  // Phase 1: select every live environment whose parent chain
  // terminates at `root`. Ownership-by-parent-chain is what makes this
  // complete: a closure cycle orphaned by an overwrite is unreachable
  // from root's bindings, but its environments still chain their
  // parents back to the module scope they were created under.
  // Environments belonging to other contexts chain to a different root
  // and are left alone. A shared_ptr pins each selection so phase 2
  // can sever environments in any order without dangling.
  std::vector<std::shared_ptr<Environment>> doomed;
  std::vector<Value> scrap;  // binding values, destroyed after unlock
  {
    std::lock_guard<std::mutex> lock(g_env_registry_mutex);
    for (Environment* env : EnvRegistry()) {
      for (Environment* e = env; e != nullptr; e = e->parent_.get()) {
        if (e == root.get()) {
          // lock() instead of shared_from_this: an env whose last
          // reference dropped on another thread is still registered
          // while its destructor waits on this mutex; its control
          // block is already expired.
          if (auto pinned = env->weak_from_this().lock()) {
            doomed.push_back(std::move(pinned));
          }
          break;
        }
      }
    }

    // Phase 2: sever — still under the lock, so a concurrent teardown's
    // phase-1 chain walk never observes a half-reset parent_. Binding
    // values are moved out, not destroyed here: their destructors can
    // release foreign environments whose ~Environment takes this same
    // mutex. parent_.reset() is safe under the lock — every ancestor of
    // a doomed env chains to root, so it is pinned in `doomed` (or is
    // root itself, pinned by the caller).
    for (const auto& env : doomed) {
      for (auto& binding : env->bindings_) {
        scrap.push_back(std::move(binding.value));
      }
      env->bindings_.clear();
      env->parent_.reset();
    }
  }
  // Dropping `scrap` releases the closures those environments kept
  // alive; dropping `doomed` releases the environments themselves —
  // both outside the lock.
}

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kUndefined: return "undefined";
    case ValueType::kNull: return "null";
    case ValueType::kBool: return "boolean";
    case ValueType::kNumber: return "number";
    case ValueType::kString: return "string";
    case ValueType::kObject: return "object";
    case ValueType::kArray: return "array";
    case ValueType::kFunction: return "function";
    case ValueType::kHostFunction: return "function";
  }
  return "?";
}

ScriptObject::Entry::Entry(uint32_t id, std::string k, Value v)
    : key_id(id), key(std::move(k)), value(std::move(v)) {}

Value* ScriptObject::Find(const std::string& key) {
  for (auto& e : items_) {
    if (e.key == key) return &e.value;
  }
  return nullptr;
}

const Value* ScriptObject::Find(const std::string& key) const {
  for (const auto& e : items_) {
    if (e.key == key) return &e.value;
  }
  return nullptr;
}

Value* ScriptObject::FindInterned(uint32_t key_id, const std::string& key) {
  for (auto& e : items_) {
    if (e.key_id == key_id) return &e.value;
    // Entry stored without an id (dynamic key / JSON interop): match by
    // spelling and upgrade so the next lookup is an integer compare.
    if (e.key_id == kNoNameId && e.key == key) {
      e.key_id = key_id;
      return &e.value;
    }
  }
  return nullptr;
}

void ScriptObject::Set(const std::string& key, Value v) {
  if (Value* existing = Find(key)) {
    *existing = std::move(v);
    return;
  }
  items_.emplace_back(kNoNameId, key, std::move(v));
}

void ScriptObject::SetInterned(uint32_t key_id, const std::string& key,
                               Value v) {
  if (Value* existing = FindInterned(key_id, key)) {
    *existing = std::move(v);
    return;
  }
  items_.emplace_back(key_id, key, std::move(v));
}

bool ScriptObject::Erase(const std::string& key) {
  for (auto it = items_.begin(); it != items_.end(); ++it) {
    if (it->key == key) {
      items_.erase(it);
      return true;
    }
  }
  return false;
}

Value Value::MakeHostFunction(std::string name, HostFunction fn) {
  auto hf = std::make_shared<HostFunctionValue>();
  hf->name = std::move(name);
  hf->fn = std::move(fn);
  return Value(std::move(hf));
}

bool Value::TruthySlow() const {
  switch (type()) {
    case ValueType::kUndefined:
    case ValueType::kNull:
      return false;
    case ValueType::kString:
      return !AsString().empty();
    default:
      return true;  // bool/number handled inline in Truthy()
  }
}

std::string NumberToString(double d) {
  if (std::isnan(d)) return "NaN";
  if (std::isinf(d)) return d > 0 ? "Infinity" : "-Infinity";
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g", d);
  return buf;
}

std::string Value::ToDisplayString() const {
  switch (type()) {
    case ValueType::kUndefined: return "undefined";
    case ValueType::kNull: return "null";
    case ValueType::kBool: return AsBool() ? "true" : "false";
    case ValueType::kNumber: return NumberToString(AsNumber());
    case ValueType::kString: return AsString();
    case ValueType::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& e : AsObject()->items()) {
        if (!first) out += ", ";
        first = false;
        out += e.key + ": " +
               (e.value.is_string() ? "\"" + e.value.AsString() + "\""
                                    : e.value.ToDisplayString());
      }
      return out + "}";
    }
    case ValueType::kArray: {
      std::string out = "[";
      bool first = true;
      for (const auto& v : *AsArray()) {
        if (!first) out += ", ";
        first = false;
        out += v.is_string() ? "\"" + v.AsString() + "\""
                             : v.ToDisplayString();
      }
      return out + "]";
    }
    case ValueType::kFunction:
      return "function " + AsFunction()->name + "() { … }";
    case ValueType::kHostFunction:
      return "function " + AsHostFunction()->name + "() { [native] }";
  }
  return "?";
}

double Value::ToNumberSlow() const {
  switch (type()) {
    case ValueType::kUndefined: return std::nan("");
    case ValueType::kNull: return 0.0;
    case ValueType::kBool: return AsBool() ? 1.0 : 0.0;
    case ValueType::kNumber: return AsNumber();  // unreachable via ToNumber()
    case ValueType::kString: {
      const std::string& s = AsString();
      if (s.empty()) return 0.0;
      char* end = nullptr;
      const double v = std::strtod(s.c_str(), &end);
      // Trailing whitespace is tolerated; other junk → NaN.
      while (end && *end == ' ') ++end;
      if (end != s.c_str() + s.size()) return std::nan("");
      return v;
    }
    default:
      return std::nan("");
  }
}

bool Value::StrictEquals(const Value& o) const {
  if (type() != o.type()) return false;
  switch (type()) {
    case ValueType::kUndefined:
    case ValueType::kNull:
      return true;
    case ValueType::kBool:
      return AsBool() == o.AsBool();
    case ValueType::kNumber:
      return AsNumber() == o.AsNumber();
    case ValueType::kString:
      return AsString() == o.AsString();
    case ValueType::kObject:
      return AsObject() == o.AsObject();
    case ValueType::kArray:
      return AsArray() == o.AsArray();
    case ValueType::kFunction:
      return AsFunction() == o.AsFunction();
    case ValueType::kHostFunction:
      return AsHostFunction() == o.AsHostFunction();
  }
  return false;
}

bool Value::LooseEquals(const Value& o) const {
  if (type() == o.type()) return StrictEquals(o);
  if (is_nullish() && o.is_nullish()) return true;
  // number <-> string coercion
  if ((is_number() && o.is_string()) || (is_string() && o.is_number())) {
    return ToNumber() == o.ToNumber();
  }
  // bool coerces to number
  if (is_bool()) return Value(ToNumber()).LooseEquals(o);
  if (o.is_bool()) return LooseEquals(Value(o.ToNumber()));
  return false;
}

void Environment::Define(const std::string& name, Value v, bool is_const) {
  DefineById(Interner::Global().Intern(name), std::move(v), is_const);
}

void Environment::DefineById(uint32_t name_id, Value v, bool is_const) {
  for (auto& binding : bindings_) {
    if (binding.name_id == name_id) {
      binding.value = std::move(v);
      binding.is_const = is_const;
      return;
    }
  }
  bindings_.push_back(Binding{name_id, std::move(v), is_const});
}

Value* Environment::Find(const std::string& name) {
  // Every Define interns: a name absent from the table is bound
  // nowhere.
  const uint32_t id = Interner::Global().Lookup(name);
  return id == kNoNameId ? nullptr : FindById(id);
}

Value* Environment::FindById(uint32_t name_id) {
  for (Environment* env = this; env != nullptr; env = env->parent_.get()) {
    for (auto& binding : env->bindings_) {
      if (binding.name_id == name_id) return &binding.value;
    }
  }
  return nullptr;
}

Status Environment::Assign(const std::string& name, Value v) {
  const uint32_t id = Interner::Global().Lookup(name);
  if (id != kNoNameId) return AssignById(id, std::move(v));
  return Status(StatusCode::kScriptError,
                "assignment to undeclared variable '" + name + "'");
}

Status Environment::AssignById(uint32_t name_id, Value v) {
  for (Environment* env = this; env != nullptr; env = env->parent_.get()) {
    for (auto& binding : env->bindings_) {
      if (binding.name_id == name_id) {
        if (binding.is_const) {
          return Status(StatusCode::kScriptError,
                        "assignment to const '" +
                            Interner::Global().NameOf(name_id) + "'");
        }
        binding.value = std::move(v);
        return Status::Ok();
      }
    }
  }
  return Status(StatusCode::kScriptError,
                "assignment to undeclared variable '" +
                    Interner::Global().NameOf(name_id) + "'");
}

uint32_t Environment::LocalIndexById(uint32_t name_id) const {
  for (size_t i = 0; i < bindings_.size(); ++i) {
    if (bindings_[i].name_id == name_id) return static_cast<uint32_t>(i);
  }
  return kNpos;
}

Value* Environment::ValueAtIfId(uint32_t index, uint32_t name_id) {
  if (index < bindings_.size() && bindings_[index].name_id == name_id) {
    return &bindings_[index].value;
  }
  return nullptr;
}

std::vector<std::string> Environment::LocalNames() const {
  std::vector<std::string> names;
  names.reserve(bindings_.size());
  for (const auto& binding : bindings_) {
    names.push_back(Interner::Global().NameOf(binding.name_id));
  }
  return names;
}

bool Environment::IsConst(const std::string& name) const {
  const uint32_t id = Interner::Global().Lookup(name);
  if (id == kNoNameId) return false;
  for (const Environment* env = this; env != nullptr;
       env = env->parent_.get()) {
    for (const auto& binding : env->bindings_) {
      if (binding.name_id == id) return binding.is_const;
    }
  }
  return false;
}

}  // namespace vp::script
