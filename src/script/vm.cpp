// vpscript bytecode VM: dispatch loop, NaN-boxed values, tracing GC.
//
// Semantics (error messages, coercions, stdlib behaviour, snapshot key
// order) mirror interp.cpp byte-for-byte — the cross-engine equivalence
// tests diff both engines' outputs directly. Deviate only with a
// matching interpreter change.
#include "script/vm.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>

#include "common/strings.hpp"
#include "script/convert.hpp"

// Token-threaded dispatch needs GNU "labels as values"; fall back to a
// plain switch elsewhere. Define VP_VM_FORCE_SWITCH to benchmark the
// switch loop on a GNU-compatible compiler.
#if !defined(VP_VM_COMPUTED_GOTO)
#if (defined(__GNUC__) || defined(__clang__)) && !defined(VP_VM_FORCE_SWITCH)
#define VP_VM_COMPUTED_GOTO 1
#else
#define VP_VM_COMPUTED_GOTO 0
#endif
#endif

namespace vp::script {

// ----------------------------------------------------- GcObject lookup
// Exact mirror of ScriptObject (value.cpp): insertion order, id upgrade
// for entries stored without one.

VpValue* GcObject::Find(const std::string& key) {
  for (auto& e : items) {
    if (e.key == key) return &e.value;
  }
  return nullptr;
}

VpValue* GcObject::FindInterned(uint32_t key_id, const std::string& key) {
  for (auto& e : items) {
    if (e.key_id == key_id) return &e.value;
    if (e.key_id == kNoNameId && e.key == key) {
      e.key_id = key_id;
      return &e.value;
    }
  }
  return nullptr;
}

void GcObject::Set(const std::string& key, VpValue v) {
  if (VpValue* existing = Find(key)) {
    *existing = v;
    return;
  }
  items.push_back(Entry{kNoNameId, key, v});
}

void GcObject::SetInterned(uint32_t key_id, const std::string& key,
                           VpValue v) {
  if (VpValue* existing = FindInterned(key_id, key)) {
    *existing = v;
    return;
  }
  items.push_back(Entry{key_id, key, v});
}

namespace {

constexpr size_t kStackCapacity = 1 << 17;
/// Defensive slack for host-boundary entry points (CallValue's
/// callee+args pushes, kUndefN block entry). The authoritative bound
/// is per-proto: PushFrame checks base + proto->max_stack, computed by
/// the compiler, which covers every push a frame can make.
constexpr size_t kStackHeadroom = 4096;
constexpr size_t kInitialGcThreshold = 256 * 1024;

/// Array builtin ordinals — same order as stdlib.cpp's ArrayMethod so
/// the two tables can never drift apart silently.
enum class ArrMethod : uint8_t {
  kPush, kPop, kShift, kUnshift, kSlice, kJoin, kIndexOf, kConcat,
  kMap, kFilter, kForEach, kReverse, kIncludes, kSort, kReduce,
};
constexpr uint8_t kNumArrayMethods = 15;
constexpr uint8_t kNoArrayMethod = 0xff;

const std::array<const char*, kNumArrayMethods>& ArrayMethodNames() {
  static const std::array<const char*, kNumArrayMethods> names = {
      "push", "pop", "shift", "unshift", "slice", "join", "indexOf",
      "concat", "map", "filter", "forEach", "reverse", "includes", "sort",
      "reduce"};
  return names;
}

const std::array<uint32_t, kNumArrayMethods>& ArrayMethodIds() {
  static const std::array<uint32_t, kNumArrayMethods> ids = [] {
    std::array<uint32_t, kNumArrayMethods> a{};
    for (size_t i = 0; i < kNumArrayMethods; ++i) {
      a[i] = Interner::Global().Intern(ArrayMethodNames()[i]);
    }
    return a;
  }();
  return ids;
}

uint8_t ArrayMethodOf(const GcString* name) {
  if (name->name_id != kNoNameId) {
    const auto& ids = ArrayMethodIds();
    for (uint8_t i = 0; i < kNumArrayMethods; ++i) {
      if (ids[i] == name->name_id) return i;
    }
    return kNoArrayMethod;
  }
  const auto& names = ArrayMethodNames();
  for (uint8_t i = 0; i < kNumArrayMethods; ++i) {
    if (name->text == names[i]) return i;
  }
  return kNoArrayMethod;
}

bool IsCallable(VpValue v) {
  return v.IsHeapType(GcType::kClosure) || v.IsHeapType(GcType::kHostFn) ||
         v.IsHeapType(GcType::kBoundMethod);
}

/// Boxed-equivalent type of a VM value, for coercion rules and names.
ValueType VmValueType(VpValue v) {
  if (v.is_number()) return ValueType::kNumber;
  if (v.is_bool()) return ValueType::kBool;
  if (v.is_null()) return ValueType::kNull;
  if (v.is_heap()) {
    switch (v.AsHeap()->type) {
      case GcType::kString: return ValueType::kString;
      case GcType::kArray: return ValueType::kArray;
      case GcType::kObject: return ValueType::kObject;
      case GcType::kClosure: return ValueType::kFunction;
      case GcType::kHostFn:
      case GcType::kBoundMethod: return ValueType::kHostFunction;
      case GcType::kUpvalue: break;  // never script-visible
    }
  }
  return ValueType::kUndefined;  // undefined / empty sentinel
}

const char* TypeofName(VpValue v) {
  const ValueType t = VmValueType(v);
  if (t == ValueType::kArray || t == ValueType::kNull) return "object";
  return ValueTypeName(t);
}

/// Mirror of Value::ToNumberSlow's string branch.
double StringToNumber(const std::string& s) {
  if (s.empty()) return 0.0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  while (end && *end == ' ') ++end;
  if (end != s.c_str() + s.size()) return std::nan("");
  return v;
}

size_t ApproxSize(const GcObj* obj) {
  switch (obj->type) {
    case GcType::kString:
      return sizeof(GcString) +
             static_cast<const GcString*>(obj)->text.capacity();
    case GcType::kArray:
      return sizeof(GcArray) +
             static_cast<const GcArray*>(obj)->items.capacity() *
                 sizeof(VpValue);
    case GcType::kObject: {
      const auto* o = static_cast<const GcObject*>(obj);
      size_t bytes = sizeof(GcObject) +
                     o->items.capacity() * sizeof(GcObject::Entry);
      for (const auto& e : o->items) bytes += e.key.capacity();
      return bytes;
    }
    case GcType::kClosure:
      return sizeof(GcClosure) +
             static_cast<const GcClosure*>(obj)->upvalues.capacity() *
                 sizeof(GcUpvalue*);
    case GcType::kUpvalue: return sizeof(GcUpvalue);
    case GcType::kHostFn: return sizeof(GcHostFn);
    case GcType::kBoundMethod: return sizeof(GcBoundMethod);
  }
  return sizeof(GcObj);
}

void FreeObject(GcObj* obj) {
  // No virtual destructor (saves a vtable pointer per object): free
  // through the type tag instead.
  switch (obj->type) {
    case GcType::kString: delete static_cast<GcString*>(obj); return;
    case GcType::kArray: delete static_cast<GcArray*>(obj); return;
    case GcType::kObject: delete static_cast<GcObject*>(obj); return;
    case GcType::kClosure: delete static_cast<GcClosure*>(obj); return;
    case GcType::kUpvalue: delete static_cast<GcUpvalue*>(obj); return;
    case GcType::kHostFn: delete static_cast<GcHostFn*>(obj); return;
    case GcType::kBoundMethod:
      delete static_cast<GcBoundMethod*>(obj);
      return;
  }
  delete obj;
}

}  // namespace

// -------------------------------------------------------- construction

Vm::Vm(InterpreterLimits limits, Interpreter* fallback_interp)
    : limits_(limits), interp_(fallback_interp) {
  stack_.resize(kStackCapacity);
  frames_.reserve(64);
  next_gc_ = kInitialGcThreshold;
}

Vm::~Vm() {
  GcObj* obj = heap_head_;
  while (obj != nullptr) {
    GcObj* next = obj->next;
    FreeObject(obj);
    obj = next;
  }
}

// ---------------------------------------------------------- allocators

void Vm::TrackAllocation(GcObj* obj, size_t bytes) {
  obj->next = heap_head_;
  heap_head_ = obj;
  ++live_objects_;
  bytes_allocated_ += bytes;
}

GcString* Vm::NewString(std::string s) {
  auto* obj = new GcString(std::move(s));
  TrackAllocation(obj, ApproxSize(obj));
  return obj;
}

GcArray* Vm::NewArray() {
  auto* obj = new GcArray();
  TrackAllocation(obj, ApproxSize(obj));
  return obj;
}

GcObject* Vm::NewObject() {
  auto* obj = new GcObject();
  TrackAllocation(obj, ApproxSize(obj));
  return obj;
}

GcClosure* Vm::NewClosure(const FunctionProto* proto) {
  auto* obj = new GcClosure(proto);
  TrackAllocation(obj, ApproxSize(obj));
  return obj;
}

GcUpvalue* Vm::NewUpvalue(VpValue* slot) {
  auto* obj = new GcUpvalue(slot);
  TrackAllocation(obj, ApproxSize(obj));
  return obj;
}

GcHostFn* Vm::NewHostFn(std::shared_ptr<HostFunctionValue> host) {
  auto* obj = new GcHostFn(std::move(host));
  TrackAllocation(obj, ApproxSize(obj));
  return obj;
}

GcBoundMethod* Vm::NewBoundMethod(VpValue receiver, uint8_t method,
                                  std::string name) {
  auto* obj = new GcBoundMethod();
  obj->receiver = receiver;
  obj->method = method;
  obj->name = std::move(name);
  TrackAllocation(obj, ApproxSize(obj));
  return obj;
}

// ------------------------------------------------------------------ GC

void Vm::MarkValue(VpValue v) {
  if (v.is_heap()) MarkObject(v.AsHeap());
}

void Vm::MarkObject(GcObj* obj) {
  if (obj == nullptr || obj->marked) return;
  obj->marked = true;
  gray_.push_back(obj);
}

void Vm::TraceReferences() {
  while (!gray_.empty()) {
    GcObj* obj = gray_.back();
    gray_.pop_back();
    switch (obj->type) {
      case GcType::kString:
      case GcType::kHostFn:
        break;
      case GcType::kArray:
        for (VpValue v : static_cast<GcArray*>(obj)->items) MarkValue(v);
        break;
      case GcType::kObject:
        for (const auto& e : static_cast<GcObject*>(obj)->items) {
          MarkValue(e.value);
        }
        break;
      case GcType::kClosure:
        for (GcUpvalue* uv : static_cast<GcClosure*>(obj)->upvalues) {
          MarkObject(uv);
        }
        break;
      case GcType::kUpvalue:
        MarkValue(*static_cast<GcUpvalue*>(obj)->location);
        break;
      case GcType::kBoundMethod:
        MarkValue(static_cast<GcBoundMethod*>(obj)->receiver);
        break;
    }
  }
}

void Vm::Sweep() {
  GcObj** link = &heap_head_;
  size_t live = 0;
  size_t bytes = 0;
  while (*link != nullptr) {
    GcObj* obj = *link;
    if (obj->marked) {
      obj->marked = false;
      bytes += ApproxSize(obj);
      ++live;
      link = &obj->next;
    } else {
      *link = obj->next;
      FreeObject(obj);
    }
  }
  live_objects_ = live;
  // Recomputed from survivors: byte accounting can never drift from
  // reality (mutations after allocation grow containers untracked).
  bytes_allocated_ = bytes;
}

void Vm::CollectGarbage() {
  gray_.clear();
  for (size_t i = 0; i < sp_; ++i) MarkValue(stack_[i]);
  for (const Frame& f : frames_) MarkObject(f.closure);
  for (GcUpvalue* uv = open_upvalues_; uv != nullptr; uv = uv->next_open) {
    MarkObject(uv);
  }
  for (const GlobalSlotData& g : globals_) MarkValue(g.value);
  for (VpValue v : temp_roots_) MarkValue(v);
  for (VpValue v : escaped_) MarkValue(v);
  for (const auto& proto : protos_) {
    for (VpValue c : proto->constants) MarkValue(c);
  }
  TraceReferences();
  Sweep();
  next_gc_ = std::max(kInitialGcThreshold, bytes_allocated_ * 2);
  ++gc_cycles_;
}

// ------------------------------------------------------- value helpers

bool Vm::Truthy(VpValue v) {
  if (v.is_number()) {
    const double d = v.AsNumber();
    return d != 0.0 && d == d;  // NaN is falsy
  }
  if (v.is_bool()) return v.AsBool();
  if (v.IsHeapType(GcType::kString)) {
    return !static_cast<GcString*>(v.AsHeap())->text.empty();
  }
  return v.is_heap();  // nullish / empty -> false, other heap -> true
}

double Vm::ToNumber(VpValue v) {
  if (v.is_number()) return v.AsNumber();
  if (v.is_bool()) return v.AsBool() ? 1.0 : 0.0;
  if (v.is_null()) return 0.0;
  if (v.IsHeapType(GcType::kString)) {
    return StringToNumber(static_cast<GcString*>(v.AsHeap())->text);
  }
  return std::nan("");
}

bool Vm::StrictEquals(VpValue a, VpValue b) {
  if (a.is_number() || b.is_number()) {
    return a.is_number() && b.is_number() && a.AsNumber() == b.AsNumber();
  }
  if (a.is_heap() && b.is_heap()) {
    GcObj* x = a.AsHeap();
    GcObj* y = b.AsHeap();
    if (x == y) return true;
    if (x->type != y->type) return false;
    // Strings compare by value; host fns by the wrapped host identity
    // (two GcHostFn wrappers may box the same host function).
    if (x->type == GcType::kString) {
      return static_cast<GcString*>(x)->text ==
             static_cast<GcString*>(y)->text;
    }
    if (x->type == GcType::kHostFn) {
      return static_cast<GcHostFn*>(x)->host.get() ==
             static_cast<GcHostFn*>(y)->host.get();
    }
    return false;
  }
  return a.bits == b.bits;  // singleton tags
}

bool Vm::LooseEquals(VpValue a, VpValue b) {
  const ValueType ta = VmValueType(a);
  const ValueType tb = VmValueType(b);
  if (ta == tb) return StrictEquals(a, b);
  if (a.is_nullish() && b.is_nullish()) return true;
  if ((ta == ValueType::kNumber && tb == ValueType::kString) ||
      (ta == ValueType::kString && tb == ValueType::kNumber)) {
    return ToNumber(a) == ToNumber(b);
  }
  if (ta == ValueType::kBool) {
    return LooseEquals(VpValue::Number(ToNumber(a)), b);
  }
  if (tb == ValueType::kBool) {
    return LooseEquals(a, VpValue::Number(ToNumber(b)));
  }
  return false;
}

const char* Vm::TypeName(VpValue v) { return ValueTypeName(VmValueType(v)); }

std::string Vm::ToDisplayString(VpValue v) const {
  if (v.is_number()) return NumberToString(v.AsNumber());
  if (v.is_undefined() || v.is_empty()) return "undefined";
  if (v.is_null()) return "null";
  if (v.is_bool()) return v.AsBool() ? "true" : "false";
  GcObj* obj = v.AsHeap();
  switch (obj->type) {
    case GcType::kString:
      return static_cast<GcString*>(obj)->text;
    case GcType::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& e : static_cast<GcObject*>(obj)->items) {
        if (!first) out += ", ";
        first = false;
        out += e.key + ": " +
               (e.value.IsHeapType(GcType::kString)
                    ? "\"" + static_cast<GcString*>(e.value.AsHeap())->text +
                          "\""
                    : ToDisplayString(e.value));
      }
      return out + "}";
    }
    case GcType::kArray: {
      std::string out = "[";
      bool first = true;
      for (VpValue item : static_cast<GcArray*>(obj)->items) {
        if (!first) out += ", ";
        first = false;
        out += item.IsHeapType(GcType::kString)
                   ? "\"" + static_cast<GcString*>(item.AsHeap())->text + "\""
                   : ToDisplayString(item);
      }
      return out + "]";
    }
    case GcType::kClosure:
      return "function " + static_cast<GcClosure*>(obj)->proto->name +
             "() { … }";
    case GcType::kHostFn:
      return "function " + static_cast<GcHostFn*>(obj)->host->name +
             "() { [native] }";
    case GcType::kBoundMethod:
      return "function " + static_cast<GcBoundMethod*>(obj)->name +
             "() { [native] }";
    case GcType::kUpvalue:
      break;
  }
  return "?";
}

// ------------------------------------------------------- error helpers

std::string Vm::FormatScriptError(int line, const std::string& what) {
  return Format("script:%d: %s", line, what.c_str());
}

Status Vm::AnnotateCallError(Status s, int line) {
  if (s.ok()) return s;
  const std::string& msg = s.message();
  if (msg.find("script:") == std::string::npos) {
    return Status(s.code(), Format("script:%d: %s", line, msg.c_str()));
  }
  return s;
}

Status Vm::BudgetExhausted(int line) const {
  return Status(
      StatusCode::kResourceExhausted,
      Format("script:%d: step budget exceeded (%llu steps)", line,
             static_cast<unsigned long long>(limits_.max_steps)));
}

int Vm::CurrentLine() const {
  if (frames_.empty()) return 0;
  const Frame& f = frames_.back();
  const FunctionProto* proto = f.closure->proto;
  size_t off = static_cast<size_t>(f.ip - proto->code.data());
  if (off > 0) --off;
  return off < proto->lines.size() ? proto->lines[off] : 0;
}

// ------------------------------------------------------------ upvalues

GcUpvalue* Vm::CaptureUpvalue(VpValue* slot) {
  // Open-upvalue list sorted by stack address, descending: reuse an
  // existing cell so every closure over a local shares it.
  GcUpvalue* prev = nullptr;
  GcUpvalue* uv = open_upvalues_;
  while (uv != nullptr && uv->location > slot) {
    prev = uv;
    uv = uv->next_open;
  }
  if (uv != nullptr && uv->location == slot) return uv;
  GcUpvalue* created = NewUpvalue(slot);
  created->next_open = uv;
  if (prev != nullptr) {
    prev->next_open = created;
  } else {
    open_upvalues_ = created;
  }
  return created;
}

void Vm::CloseUpvalues(VpValue* from) {
  while (open_upvalues_ != nullptr && open_upvalues_->location >= from) {
    GcUpvalue* uv = open_upvalues_;
    uv->closed = *uv->location;
    uv->location = &uv->closed;
    open_upvalues_ = uv->next_open;
  }
}

// --------------------------------------------------------------- calls

Status Vm::PushFrame(VpValue callee, int argc, int line) {
  (void)line;
  auto* closure = static_cast<GcClosure*>(callee.AsHeap());
  const FunctionProto* proto = closure->proto;
  // Interpreter parity: call_depth_ >= max_call_depth rejects the call.
  // depth_base_ maps frame count to interpreter depth for this entry.
  if (frames_.size() >=
      depth_base_ + static_cast<size_t>(limits_.max_call_depth)) {
    return Status(StatusCode::kScriptError,
                  Format("call depth limit (%d) exceeded",
                         limits_.max_call_depth));
  }
  // One bounds check per call covers every push the frame can make:
  // max_stack is the compiler-computed worst-case depth of the body
  // (locals and literal/argument temporaries included), so a frame can
  // never outgrow a fixed headroom between checks.
  const size_t base = sp_ - static_cast<size_t>(argc) - 1;
  if (base + proto->max_stack > stack_.size()) {
    return Status(StatusCode::kScriptError, "stack overflow");
  }
  // Arity fixup, as the interpreter's positional parameter bind: extra
  // arguments dropped, missing ones undefined.
  while (argc > proto->arity) {
    --sp_;
    --argc;
  }
  while (argc < proto->arity) {
    Push(VpValue::Undefined());
    ++argc;
  }
  frames_.push_back(Frame{closure, proto->code.data(),
                          sp_ - static_cast<size_t>(proto->arity) - 1});
  return Status::Ok();
}

Status Vm::CallNonClosure(VpValue callee, int argc, int line) {
  // Stack holds [callee, args...]; on success they are replaced by the
  // result. On error the caller unwinds sp_.
  if (callee.IsHeapType(GcType::kHostFn)) {
    VpValue out;
    Status s = CallHostFn(static_cast<GcHostFn*>(callee.AsHeap()),
                          &stack_[sp_ - static_cast<size_t>(argc)], argc,
                          line, &out);
    if (!s.ok()) return s;
    sp_ -= static_cast<size_t>(argc) + 1;
    Push(out);
    return Status::Ok();
  }
  if (callee.IsHeapType(GcType::kBoundMethod)) {
    auto* bm = static_cast<GcBoundMethod*>(callee.AsHeap());
    VpValue out;
    Status s = InvokeArrayMethod(static_cast<GcArray*>(bm->receiver.AsHeap()),
                                 bm->method, argc, line, &out);
    if (!s.ok()) return s;
    sp_ -= static_cast<size_t>(argc) + 1;
    Push(out);
    return Status::Ok();
  }
  return Status(StatusCode::kScriptError,
                std::string("attempt to call a ") + TypeName(callee));
}

Result<VpValue> Vm::CallValue(VpValue callee, const VpValue* args, int argc,
                              int line) {
  if (sp_ + static_cast<size_t>(argc) + kStackHeadroom > stack_.size()) {
    return Error(StatusCode::kScriptError, "stack overflow");
  }
  const size_t entry_sp = sp_;
  Push(callee);
  for (int i = 0; i < argc; ++i) Push(args[i]);
  if (callee.IsHeapType(GcType::kClosure)) {
    const size_t base_frames = frames_.size();
    Status s = PushFrame(callee, argc, line);
    if (s.ok()) s = Run(base_frames);
    if (!s.ok()) {
      CloseUpvalues(&stack_[entry_sp]);
      sp_ = entry_sp;
      frames_.resize(base_frames);
      return s.error();
    }
    return Pop();
  }
  Status s = CallNonClosure(callee, argc, line);
  if (!s.ok()) {
    sp_ = entry_sp;
    return s.error();
  }
  return Pop();
}

Status Vm::CallHostFn(GcHostFn* host, const VpValue* args, int argc,
                      int line, VpValue* out) {
  (void)line;
  std::vector<Value> boxed;
  boxed.reserve(static_cast<size_t>(argc));
  std::unordered_map<const GcObj*, Value> memo;  // arg-sharing per call
  for (int i = 0; i < argc; ++i) {
    boxed.push_back(ExportValueRec(args[i], memo));
  }
  auto r = host->host->fn(boxed, *interp_);
  if (!r.ok()) return r.status();
  *out = BoxedToVm(*r);
  return Status::Ok();
}

// ------------------------------------------------- native array methods
// Exact mirrors of stdlib.cpp's InvokeArrayMethod, operating on VM
// values in place. Arguments live on the VM stack (rooted across
// reentrant callbacks).

Status Vm::InvokeArrayMethod(GcArray* arr, uint8_t method, int argc,
                             int line, VpValue* out) {
  const size_t args_base = sp_ - static_cast<size_t>(argc);
  auto arg = [&](int i) { return stack_[args_base + static_cast<size_t>(i)]; };
  switch (static_cast<ArrMethod>(method)) {
    case ArrMethod::kPush: {
      for (int i = 0; i < argc; ++i) arr->items.push_back(arg(i));
      *out = VpValue::Number(static_cast<double>(arr->items.size()));
      return Status::Ok();
    }
    case ArrMethod::kPop: {
      if (arr->items.empty()) {
        *out = VpValue::Undefined();
        return Status::Ok();
      }
      *out = arr->items.back();
      arr->items.pop_back();
      return Status::Ok();
    }
    case ArrMethod::kShift: {
      if (arr->items.empty()) {
        *out = VpValue::Undefined();
        return Status::Ok();
      }
      *out = arr->items.front();
      arr->items.erase(arr->items.begin());
      return Status::Ok();
    }
    case ArrMethod::kUnshift: {
      arr->items.insert(arr->items.begin(), &stack_[args_base],
                        &stack_[args_base] + argc);
      *out = VpValue::Number(static_cast<double>(arr->items.size()));
      return Status::Ok();
    }
    case ArrMethod::kSlice: {
      int64_t n = static_cast<int64_t>(arr->items.size());
      int64_t a = argc > 0 ? static_cast<int64_t>(ToNumber(arg(0))) : 0;
      int64_t b = argc > 1 ? static_cast<int64_t>(ToNumber(arg(1))) : n;
      if (a < 0) a += n;
      if (b < 0) b += n;
      a = std::clamp<int64_t>(a, 0, n);
      b = std::clamp<int64_t>(b, 0, n);
      GcArray* result = NewArray();
      for (int64_t i = a; i < b; ++i) {
        result->items.push_back(arr->items[static_cast<size_t>(i)]);
      }
      *out = VpValue::Heap(result);
      return Status::Ok();
    }
    case ArrMethod::kJoin: {
      const std::string sep = argc == 0 ? "," : ToDisplayString(arg(0));
      std::string joined;
      for (size_t i = 0; i < arr->items.size(); ++i) {
        if (i) joined += sep;
        joined += ToDisplayString(arr->items[i]);
      }
      *out = VpValue::Heap(NewString(std::move(joined)));
      return Status::Ok();
    }
    case ArrMethod::kIndexOf: {
      *out = VpValue::Number(-1.0);
      if (argc == 0) return Status::Ok();
      for (size_t i = 0; i < arr->items.size(); ++i) {
        if (StrictEquals(arr->items[i], arg(0))) {
          *out = VpValue::Number(static_cast<double>(i));
          return Status::Ok();
        }
      }
      return Status::Ok();
    }
    case ArrMethod::kConcat: {
      GcArray* result = NewArray();
      result->items = arr->items;
      for (int i = 0; i < argc; ++i) {
        VpValue v = arg(i);
        if (v.IsHeapType(GcType::kArray)) {
          auto* other = static_cast<GcArray*>(v.AsHeap());
          result->items.insert(result->items.end(), other->items.begin(),
                               other->items.end());
        } else {
          result->items.push_back(v);
        }
      }
      *out = VpValue::Heap(result);
      return Status::Ok();
    }
    case ArrMethod::kMap:
    case ArrMethod::kFilter:
    case ArrMethod::kForEach: {
      if (argc == 0 || !IsCallable(arg(0))) {
        return Status(ScriptError("expected a callback function"));
      }
      GcArray* result = NewArray();
      TempRootScope roots(*this);
      roots.Pin(VpValue::Heap(result));  // survives callback-driven GC
      // Live re-reads of size/elements each iteration, like stdlib.
      for (size_t i = 0; i < arr->items.size(); ++i) {
        VpValue cb_args[2] = {arr->items[i],
                              VpValue::Number(static_cast<double>(i))};
        auto r = CallValue(arg(0), cb_args, 2, line);
        if (!r.ok()) return r.status();
        switch (static_cast<ArrMethod>(method)) {
          case ArrMethod::kMap:
            result->items.push_back(*r);
            break;
          case ArrMethod::kFilter:
            if (Truthy(*r) && i < arr->items.size()) {
              result->items.push_back(arr->items[i]);
            }
            break;
          default:
            break;
        }
      }
      *out = static_cast<ArrMethod>(method) == ArrMethod::kForEach
                 ? VpValue::Undefined()
                 : VpValue::Heap(result);
      return Status::Ok();
    }
    case ArrMethod::kReverse: {
      std::reverse(arr->items.begin(), arr->items.end());
      *out = VpValue::Heap(arr);
      return Status::Ok();
    }
    case ArrMethod::kIncludes: {
      *out = VpValue::Boolean(false);
      if (argc == 0) return Status::Ok();
      for (VpValue v : arr->items) {
        if (StrictEquals(v, arg(0))) {
          *out = VpValue::Boolean(true);
          return Status::Ok();
        }
      }
      return Status::Ok();
    }
    case ArrMethod::kSort: {
      if (argc > 0 && IsCallable(arg(0))) {
        // std::stable_sort's temporary buffer hides elements from the
        // stack roots mid-sort: pin copies for the duration.
        TempRootScope roots(*this);
        for (VpValue v : arr->items) roots.Pin(v);
        Status failure = Status::Ok();
        const VpValue cmp = arg(0);
        std::stable_sort(arr->items.begin(), arr->items.end(),
                         [&](VpValue a, VpValue b) {
                           if (!failure.ok()) return false;
                           VpValue cb_args[2] = {a, b};
                           auto r = CallValue(cmp, cb_args, 2, line);
                           if (!r.ok()) {
                             failure = r.status();
                             return false;
                           }
                           return ToNumber(*r) < 0;
                         });
        if (!failure.ok()) return failure;
      } else {
        bool all_numbers = true;
        for (VpValue v : arr->items) all_numbers &= v.is_number();
        std::stable_sort(arr->items.begin(), arr->items.end(),
                         [all_numbers, this](VpValue a, VpValue b) {
                           if (all_numbers) return a.AsNumber() < b.AsNumber();
                           return ToDisplayString(a) < ToDisplayString(b);
                         });
      }
      *out = VpValue::Heap(arr);
      return Status::Ok();
    }
    case ArrMethod::kReduce: {
      if (argc == 0 || !IsCallable(arg(0))) {
        return Status(ScriptError("expected a callback function"));
      }
      size_t start = 0;
      VpValue acc;
      if (argc > 1) {
        acc = arg(1);
      } else {
        if (arr->items.empty()) {
          return Status(ScriptError("reduce of empty array"));
        }
        acc = arr->items[0];
        start = 1;
      }
      // acc is rooted whenever a collection can run: CallValue pushes
      // it as an argument before entering the dispatch loop.
      for (size_t i = start; i < arr->items.size(); ++i) {
        VpValue cb_args[3] = {acc, arr->items[i],
                              VpValue::Number(static_cast<double>(i))};
        auto r = CallValue(arg(0), cb_args, 3, line);
        if (!r.ok()) return r.status();
        acc = *r;
      }
      *out = acc;
      return Status::Ok();
    }
  }
  return Status(ScriptError("unknown array method"));
}

// ----------------------------------------------------------- properties

Result<VpValue> Vm::GetPropertyVm(VpValue obj, const GcString* name,
                                  int line) {
  if (obj.is_nullish()) {
    return Raise(line, "cannot read property '" + name->text + "' of " +
                           TypeName(obj))
        .error();
  }
  if (obj.IsHeapType(GcType::kObject)) {
    auto* o = static_cast<GcObject*>(obj.AsHeap());
    VpValue* v = name->name_id != kNoNameId
                     ? o->FindInterned(name->name_id, name->text)
                     : o->Find(name->text);
    return v != nullptr ? *v : VpValue::Undefined();
  }
  if (obj.IsHeapType(GcType::kArray)) {
    auto* arr = static_cast<GcArray*>(obj.AsHeap());
    if (name->text == "length") {
      return VpValue::Number(static_cast<double>(arr->items.size()));
    }
    const uint8_t method = ArrayMethodOf(name);
    if (method != kNoArrayMethod) {
      // Fresh per access, like stdlib's ArrayProperty bound Method.
      return VpValue::Heap(NewBoundMethod(obj, method, name->text));
    }
    return VpValue::Undefined();
  }
  if (obj.IsHeapType(GcType::kString)) {
    // String methods bridge through the boxed stdlib (they capture the
    // string by value, so the round trip is loss-free).
    auto* s = static_cast<GcString*>(obj.AsHeap());
    auto r = GetProperty(Value(s->text), name->text, *interp_);
    if (!r.ok()) return r.error();
    return BoxedToVm(*r);
  }
  return VpValue::Undefined();  // numbers, booleans, functions
}

// -------------------------------------------------------- dispatch loop

Status Vm::Run(size_t base_frames) {
  Frame* frame = &frames_.back();
  const FunctionProto* proto = frame->closure->proto;
  const uint8_t* ip = frame->ip;
  Status err = Status::Ok();

  auto read_u16 = [&ip]() {
    const uint16_t v =
        static_cast<uint16_t>(ip[0] | (static_cast<uint16_t>(ip[1]) << 8));
    ip += 2;
    return v;
  };
  // Line of the instruction whose last byte was just read (operands
  // share their opcode's line).
  auto line_at = [&]() {
    return proto->lines[static_cast<size_t>(ip - proto->code.data()) - 1];
  };
  auto refresh = [&]() {
    frame = &frames_.back();
    proto = frame->closure->proto;
    ip = frame->ip;
  };

  // max_steps never changes mid-run (ResetBudget happens between
  // entry-point calls), so hoist the load out of the dispatch loop.
  // The step counter runs in a local so the hot path increments a
  // register instead of a member; it is flushed to steps_used_ before
  // anything that can nest another Run activation (host function ->
  // CallValue) and reloaded after, so the budget stays shared.
  const uint64_t max_steps = limits_.max_steps;
  uint64_t steps = steps_used_;

  // One dispatch step: GC safepoint (allocation itself never collects;
  // pressure is checked only at instruction boundaries, so collection
  // points are a pure function of the instruction stream), step
  // budget, then decode the next opcode into `op`.
#define VM_STEP()                                                          \
  if (bytes_allocated_ > next_gc_) {                                       \
    frame->ip = ip;                                                        \
    CollectGarbage();                                                      \
  }                                                                        \
  if (++steps > max_steps) {                                               \
    err = BudgetExhausted(                                                 \
        proto->lines[static_cast<size_t>(ip - proto->code.data())]);       \
    goto unwind;                                                           \
  }                                                                        \
  op = static_cast<Op>(*ip++)

#if VP_VM_COMPUTED_GOTO
  // Token-threaded dispatch (GNU labels-as-values): every handler ends
  // by jumping straight to the next opcode's handler, so the branch
  // predictor sees one indirect-branch site per opcode instead of a
  // single shared switch branch. Table order must match enum Op
  // exactly (static_assert pins the count).
  static const void* const kDispatch[] = {
      &&lbl_kConst,
      &&lbl_kUndefined,
      &&lbl_kNull,
      &&lbl_kTrue,
      &&lbl_kFalse,
      &&lbl_kUndefN,
      &&lbl_kPop,
      &&lbl_kPopN,
      &&lbl_kDup,
      &&lbl_kSwap,
      &&lbl_kRot3,
      &&lbl_kGetLocal,
      &&lbl_kSetLocal,
      &&lbl_kGetUpvalue,
      &&lbl_kSetUpvalue,
      &&lbl_kGetGlobal,
      &&lbl_kSetGlobal,
      &&lbl_kDefineGlobal,
      &&lbl_kDefineGlobalConst,
      &&lbl_kArray,
      &&lbl_kObject,
      &&lbl_kGetProp,
      &&lbl_kSetProp,
      &&lbl_kGetIndex,
      &&lbl_kSetIndex,
      &&lbl_kAdd,
      &&lbl_kSub,
      &&lbl_kMul,
      &&lbl_kDiv,
      &&lbl_kMod,
      &&lbl_kEq,
      &&lbl_kNe,
      &&lbl_kStrictEq,
      &&lbl_kStrictNe,
      &&lbl_kLt,
      &&lbl_kLe,
      &&lbl_kGt,
      &&lbl_kGe,
      &&lbl_kNegate,
      &&lbl_kToNumber,
      &&lbl_kNot,
      &&lbl_kTypeof,
      &&lbl_kInc,
      &&lbl_kDec,
      &&lbl_kJump,
      &&lbl_kJumpIfFalse,
      &&lbl_kJumpIfTrue,
      &&lbl_kJumpIfFalsePeek,
      &&lbl_kJumpIfTruePeek,
      &&lbl_kLoop,
      &&lbl_kCall,
      &&lbl_kInvoke,
      &&lbl_kClosure,
      &&lbl_kCloseScope,
      &&lbl_kReturn,
      &&lbl_kReturnUndef,
      &&lbl_kPushHandler,
      &&lbl_kPopHandler,
      &&lbl_kThrow,
      &&lbl_kForInInit,
      &&lbl_kForInNext,
      &&lbl_kRuntimeError,
  };
  static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                    static_cast<size_t>(Op::kRuntimeError) + 1,
                "dispatch table out of sync with enum Op");
#define VM_CASE(name) lbl_##name
#define VM_NEXT()                                                          \
  do {                                                                     \
    VM_STEP();                                                             \
    goto* kDispatch[static_cast<uint8_t>(op)];                             \
  } while (0)
#else
#define VM_CASE(name) case Op::name
#define VM_NEXT() break
#endif

  Op op;
  for (;;) {
    VM_STEP();
#if VP_VM_COMPUTED_GOTO
    goto* kDispatch[static_cast<uint8_t>(op)];
#else
    switch (op)
#endif
    {
        VM_CASE(kConst):
          Push(proto->constants[read_u16()]);
          VM_NEXT();
        VM_CASE(kUndefined):
          Push(VpValue::Undefined());
          VM_NEXT();
        VM_CASE(kNull):
          Push(VpValue::Null());
          VM_NEXT();
        VM_CASE(kTrue):
          Push(VpValue::Boolean(true));
          VM_NEXT();
        VM_CASE(kFalse):
          Push(VpValue::Boolean(false));
          VM_NEXT();
        VM_CASE(kUndefN): {
          const uint16_t n = read_u16();
          if (sp_ + n + kStackHeadroom > stack_.size()) {
            err = Status(StatusCode::kScriptError, "stack overflow");
            goto unwind;
          }
          for (uint16_t i = 0; i < n; ++i) Push(VpValue::Undefined());
          VM_NEXT();
        }
        VM_CASE(kPop):
          --sp_;
          VM_NEXT();
        VM_CASE(kPopN):
          sp_ -= read_u16();
          VM_NEXT();
        VM_CASE(kDup):
          Push(Peek(0));
          VM_NEXT();
        VM_CASE(kSwap):
          std::swap(stack_[sp_ - 1], stack_[sp_ - 2]);
          VM_NEXT();
        VM_CASE(kRot3): {
          const VpValue a = stack_[sp_ - 3];
          stack_[sp_ - 3] = stack_[sp_ - 2];
          stack_[sp_ - 2] = stack_[sp_ - 1];
          stack_[sp_ - 1] = a;
          VM_NEXT();
        }
        VM_CASE(kGetLocal):
          Push(stack_[frame->base + read_u16()]);
          VM_NEXT();
        VM_CASE(kSetLocal):
          stack_[frame->base + read_u16()] = Peek(0);
          VM_NEXT();
        VM_CASE(kGetUpvalue):
          Push(*frame->closure->upvalues[read_u16()]->location);
          VM_NEXT();
        VM_CASE(kSetUpvalue):
          *frame->closure->upvalues[read_u16()]->location = Peek(0);
          VM_NEXT();
        VM_CASE(kGetGlobal): {
          const GlobalSlotData& g = globals_[read_u16()];
          if (g.value.is_empty()) {
            err = Raise(line_at(), "'" + g.name + "' is not defined");
            goto unwind;
          }
          Push(g.value);
          VM_NEXT();
        }
        VM_CASE(kSetGlobal): {
          GlobalSlotData& g = globals_[read_u16()];
          if (g.value.is_empty()) {
            err = Raise(line_at(),
                        "assignment to undeclared variable '" + g.name + "'");
            goto unwind;
          }
          if (g.is_const) {
            err = Raise(line_at(), "assignment to const '" + g.name + "'");
            goto unwind;
          }
          g.value = Peek(0);
          VM_NEXT();
        }
        VM_CASE(kDefineGlobal):
        VM_CASE(kDefineGlobalConst): {
          GlobalSlotData& g = globals_[read_u16()];
          g.value = Pop();
          g.is_const = op == Op::kDefineGlobalConst;
          VM_NEXT();
        }
        VM_CASE(kArray): {
          const uint16_t n = read_u16();
          GcArray* arr = NewArray();
          arr->items.assign(stack_.begin() + static_cast<long>(sp_ - n),
                            stack_.begin() + static_cast<long>(sp_));
          sp_ -= n;
          Push(VpValue::Heap(arr));
          VM_NEXT();
        }
        VM_CASE(kObject): {
          const uint16_t n = read_u16();
          GcObject* obj = NewObject();
          obj->items.reserve(n);
          const size_t first = sp_ - 2 * static_cast<size_t>(n);
          for (uint16_t i = 0; i < n; ++i) {
            auto* key =
                static_cast<GcString*>(stack_[first + 2 * i].AsHeap());
            const VpValue value = stack_[first + 2 * i + 1];
            if (key->name_id != kNoNameId) {
              obj->SetInterned(key->name_id, key->text, value);
            } else {
              obj->Set(key->text, value);
            }
          }
          sp_ = first;
          Push(VpValue::Heap(obj));
          VM_NEXT();
        }
        VM_CASE(kGetProp): {
          const uint16_t name_idx = read_u16();
          const int line = line_at();
          auto* name =
              static_cast<GcString*>(proto->constants[name_idx].AsHeap());
          auto r = GetPropertyVm(Peek(0), name, line);
          if (!r.ok()) {
            err = r.status();
            goto unwind;
          }
          Pop();
          Push(*r);
          VM_NEXT();
        }
        VM_CASE(kSetProp): {
          const uint16_t name_idx = read_u16();
          const int line = line_at();
          auto* name =
              static_cast<GcString*>(proto->constants[name_idx].AsHeap());
          const VpValue value = Pop();
          const VpValue obj = Pop();
          if (!obj.IsHeapType(GcType::kObject)) {
            err = Raise(line, "cannot set property '" + name->text +
                                  "' on a " + TypeName(obj));
            goto unwind;
          }
          auto* o = static_cast<GcObject*>(obj.AsHeap());
          if (name->name_id != kNoNameId) {
            o->SetInterned(name->name_id, name->text, value);
          } else {
            o->Set(name->text, value);
          }
          Push(value);
          VM_NEXT();
        }
        VM_CASE(kGetIndex): {
          const int line = line_at();
          const VpValue index = Pop();
          const VpValue obj = Pop();
          if (obj.IsHeapType(GcType::kArray)) {
            auto* arr = static_cast<GcArray*>(obj.AsHeap());
            const double d = ToNumber(index);
            if (std::isnan(d)) {
              err = Raise(line, "array index is NaN");
              goto unwind;
            }
            const int64_t i = static_cast<int64_t>(d);
            if (i < 0 || static_cast<size_t>(i) >= arr->items.size()) {
              Push(VpValue::Undefined());
            } else {
              Push(arr->items[static_cast<size_t>(i)]);
            }
          } else if (obj.IsHeapType(GcType::kObject)) {
            auto* o = static_cast<GcObject*>(obj.AsHeap());
            VpValue* v = o->Find(ToDisplayString(index));
            Push(v != nullptr ? *v : VpValue::Undefined());
          } else if (obj.IsHeapType(GcType::kString)) {
            const std::string& s =
                static_cast<GcString*>(obj.AsHeap())->text;
            const double d = ToNumber(index);
            const int64_t i =
                std::isnan(d) ? -1 : static_cast<int64_t>(d);
            if (i < 0 || static_cast<size_t>(i) >= s.size()) {
              Push(VpValue::Undefined());
            } else {
              Push(VpValue::Heap(
                  NewString(std::string(1, s[static_cast<size_t>(i)]))));
            }
          } else {
            err = Raise(line,
                        std::string("cannot index a ") + TypeName(obj));
            goto unwind;
          }
          VM_NEXT();
        }
        VM_CASE(kSetIndex): {
          const int line = line_at();
          const VpValue value = Pop();
          const VpValue index = Pop();
          const VpValue obj = Pop();
          if (obj.IsHeapType(GcType::kArray)) {
            const double d = ToNumber(index);
            if (std::isnan(d) || d < 0) {
              err = Raise(line, "bad array index");
              goto unwind;
            }
            auto* arr = static_cast<GcArray*>(obj.AsHeap());
            const size_t i = static_cast<size_t>(d);
            if (i >= arr->items.size()) arr->items.resize(i + 1);
            arr->items[i] = value;
            Push(value);
          } else if (obj.IsHeapType(GcType::kObject)) {
            static_cast<GcObject*>(obj.AsHeap())
                ->Set(ToDisplayString(index), value);
            Push(value);
          } else {
            err = Raise(line, std::string("cannot index-assign a ") +
                                  TypeName(obj));
            goto unwind;
          }
          VM_NEXT();
        }
        VM_CASE(kAdd): {
          const VpValue b = Pop();
          const VpValue a = Pop();
          if (a.is_number() && b.is_number()) {
            Push(VpValue::Number(a.AsNumber() + b.AsNumber()));
          } else if (a.IsHeapType(GcType::kString) ||
                     b.IsHeapType(GcType::kString)) {
            Push(VpValue::Heap(
                NewString(ToDisplayString(a) + ToDisplayString(b))));
          } else {
            Push(VpValue::Number(ToNumber(a) + ToNumber(b)));
          }
          VM_NEXT();
        }
        VM_CASE(kSub): {
          const VpValue b = Pop();
          const VpValue a = Pop();
          Push(VpValue::Number(ToNumber(a) - ToNumber(b)));
          VM_NEXT();
        }
        VM_CASE(kMul): {
          const VpValue b = Pop();
          const VpValue a = Pop();
          Push(VpValue::Number(ToNumber(a) * ToNumber(b)));
          VM_NEXT();
        }
        VM_CASE(kDiv): {
          const VpValue b = Pop();
          const VpValue a = Pop();
          Push(VpValue::Number(ToNumber(a) / ToNumber(b)));
          VM_NEXT();
        }
        VM_CASE(kMod): {
          const VpValue b = Pop();
          const VpValue a = Pop();
          Push(VpValue::Number(std::fmod(ToNumber(a), ToNumber(b))));
          VM_NEXT();
        }
        VM_CASE(kEq): {
          const VpValue b = Pop();
          const VpValue a = Pop();
          Push(VpValue::Boolean(LooseEquals(a, b)));
          VM_NEXT();
        }
        VM_CASE(kNe): {
          const VpValue b = Pop();
          const VpValue a = Pop();
          Push(VpValue::Boolean(!LooseEquals(a, b)));
          VM_NEXT();
        }
        VM_CASE(kStrictEq): {
          const VpValue b = Pop();
          const VpValue a = Pop();
          Push(VpValue::Boolean(StrictEquals(a, b)));
          VM_NEXT();
        }
        VM_CASE(kStrictNe): {
          const VpValue b = Pop();
          const VpValue a = Pop();
          Push(VpValue::Boolean(!StrictEquals(a, b)));
          VM_NEXT();
        }
        VM_CASE(kLt):
        VM_CASE(kLe):
        VM_CASE(kGt):
        VM_CASE(kGe): {
          const VpValue b = Pop();
          const VpValue a = Pop();
          bool result;
          if (a.IsHeapType(GcType::kString) &&
              b.IsHeapType(GcType::kString)) {
            const int cmp =
                static_cast<GcString*>(a.AsHeap())
                    ->text.compare(static_cast<GcString*>(b.AsHeap())->text);
            result = op == Op::kLt   ? cmp < 0
                     : op == Op::kLe ? cmp <= 0
                     : op == Op::kGt ? cmp > 0
                                     : cmp >= 0;
          } else {
            const double x = ToNumber(a);
            const double y = ToNumber(b);
            result = op == Op::kLt   ? x < y
                     : op == Op::kLe ? x <= y
                     : op == Op::kGt ? x > y
                                     : x >= y;
          }
          Push(VpValue::Boolean(result));
          VM_NEXT();
        }
        VM_CASE(kNegate):
          Push(VpValue::Number(-ToNumber(Pop())));
          VM_NEXT();
        VM_CASE(kToNumber):
          Push(VpValue::Number(ToNumber(Pop())));
          VM_NEXT();
        VM_CASE(kNot):
          Push(VpValue::Boolean(!Truthy(Pop())));
          VM_NEXT();
        VM_CASE(kTypeof):
          Push(VpValue::Heap(NewString(TypeofName(Pop()))));
          VM_NEXT();
        VM_CASE(kInc):
          Push(VpValue::Number(ToNumber(Pop()) + 1));
          VM_NEXT();
        VM_CASE(kDec):
          Push(VpValue::Number(ToNumber(Pop()) - 1));
          VM_NEXT();
        VM_CASE(kJump): {
          const uint16_t off = read_u16();
          ip += off;
          VM_NEXT();
        }
        VM_CASE(kJumpIfFalse): {
          const uint16_t off = read_u16();
          if (!Truthy(Pop())) ip += off;
          VM_NEXT();
        }
        VM_CASE(kJumpIfTrue): {
          const uint16_t off = read_u16();
          if (Truthy(Pop())) ip += off;
          VM_NEXT();
        }
        VM_CASE(kJumpIfFalsePeek): {
          const uint16_t off = read_u16();
          if (!Truthy(Peek(0))) ip += off;
          VM_NEXT();
        }
        VM_CASE(kJumpIfTruePeek): {
          const uint16_t off = read_u16();
          if (Truthy(Peek(0))) ip += off;
          VM_NEXT();
        }
        VM_CASE(kLoop): {
          const uint16_t off = read_u16();
          ip -= off;
          VM_NEXT();
        }
        VM_CASE(kCall): {
          const int argc = *ip++;
          const int line = line_at();
          const VpValue callee = Peek(static_cast<size_t>(argc));
          frame->ip = ip;
          if (callee.IsHeapType(GcType::kClosure)) {
            Status s = PushFrame(callee, argc, line);
            if (!s.ok()) {
              err = AnnotateCallError(s, line);
              goto unwind;
            }
            refresh();
          } else {
            steps_used_ = steps;
            Status s = CallNonClosure(callee, argc, line);
            steps = steps_used_;
            refresh();  // reentrant callees may grow frames_
            if (!s.ok()) {
              err = AnnotateCallError(s, line);
              goto unwind;
            }
          }
          VM_NEXT();
        }
        VM_CASE(kInvoke): {
          const uint16_t name_idx = read_u16();
          const int argc = *ip++;
          const int line = line_at();
          auto* name =
              static_cast<GcString*>(proto->constants[name_idx].AsHeap());
          const VpValue receiver = Peek(static_cast<size_t>(argc));
          if (receiver.is_nullish()) {
            err = Raise(line, "cannot read property '" + name->text +
                                  "' of " + TypeName(receiver));
            goto unwind;
          }
          frame->ip = ip;
          VpValue callee = VpValue::Undefined();
          if (receiver.IsHeapType(GcType::kArray)) {
            const uint8_t method = ArrayMethodOf(name);
            if (method != kNoArrayMethod) {
              // Fused native dispatch: no bound-method allocation.
              VpValue invoke_out;
              steps_used_ = steps;
              Status s = InvokeArrayMethod(
                  static_cast<GcArray*>(receiver.AsHeap()), method, argc,
                  line, &invoke_out);
              steps = steps_used_;
              refresh();
              if (!s.ok()) {
                err = AnnotateCallError(s, line);
                goto unwind;
              }
              sp_ -= static_cast<size_t>(argc) + 1;
              Push(invoke_out);
              VM_NEXT();
            }
            auto r = GetPropertyVm(receiver, name, line);
            if (!r.ok()) {
              err = r.status();
              goto unwind;
            }
            callee = *r;
          } else if (receiver.IsHeapType(GcType::kObject)) {
            auto* o = static_cast<GcObject*>(receiver.AsHeap());
            VpValue* v = name->name_id != kNoNameId
                             ? o->FindInterned(name->name_id, name->text)
                             : o->Find(name->text);
            callee = v != nullptr ? *v : VpValue::Undefined();
          } else {
            auto r = GetPropertyVm(receiver, name, line);
            if (!r.ok()) {
              err = r.status();
              goto unwind;
            }
            callee = *r;
          }
          // Replace the receiver slot with the callee and dispatch.
          stack_[sp_ - static_cast<size_t>(argc) - 1] = callee;
          if (callee.IsHeapType(GcType::kClosure)) {
            Status s = PushFrame(callee, argc, line);
            if (!s.ok()) {
              err = AnnotateCallError(s, line);
              goto unwind;
            }
            refresh();
          } else {
            steps_used_ = steps;
            Status s = CallNonClosure(callee, argc, line);
            steps = steps_used_;
            refresh();
            if (!s.ok()) {
              err = AnnotateCallError(s, line);
              goto unwind;
            }
          }
          VM_NEXT();
        }
        VM_CASE(kClosure): {
          const uint16_t proto_idx = read_u16();
          const FunctionProto* fn = protos_[proto_idx].get();
          GcClosure* closure = NewClosure(fn);
          Push(VpValue::Heap(closure));
          closure->upvalues.reserve(fn->upvalues.size());
          for (const UpvalDesc& d : fn->upvalues) {
            closure->upvalues.push_back(
                d.from_local
                    ? CaptureUpvalue(&stack_[frame->base + d.index])
                    : frame->closure->upvalues[d.index]);
          }
          VM_NEXT();
        }
        VM_CASE(kCloseScope): {
          const uint16_t n = read_u16();
          CloseUpvalues(&stack_[sp_ - n]);
          sp_ -= n;
          VM_NEXT();
        }
        VM_CASE(kReturn):
        VM_CASE(kReturnUndef): {
          const VpValue result =
              op == Op::kReturn ? Pop() : VpValue::Undefined();
          CloseUpvalues(&stack_[frame->base]);
          while (!handlers_.empty() &&
                 handlers_.back().frame_index >= frames_.size() - 1) {
            handlers_.pop_back();
          }
          sp_ = frame->base;
          frames_.pop_back();
          if (frames_.size() == base_frames) {
            Push(result);
            steps_used_ = steps;
            return Status::Ok();
          }
          refresh();
          Push(result);
          VM_NEXT();
        }
        VM_CASE(kPushHandler): {
          const uint16_t off = read_u16();
          const size_t target =
              static_cast<size_t>(ip - proto->code.data()) + off;
          handlers_.push_back(Handler{frames_.size() - 1, sp_, target});
          VM_NEXT();
        }
        VM_CASE(kPopHandler):
          handlers_.pop_back();
          VM_NEXT();
        VM_CASE(kThrow): {
          const int line = line_at();
          const VpValue thrown = Pop();
          err = Raise(line, "uncaught: " + ToDisplayString(thrown));
          goto unwind;
        }
        VM_CASE(kForInInit): {
          const int line = line_at();
          const VpValue subject = Pop();
          if (subject.IsHeapType(GcType::kObject)) {
            auto* o = static_cast<GcObject*>(subject.AsHeap());
            GcArray* keys = NewArray();
            Push(VpValue::Heap(keys));
            keys->items.reserve(o->items.size());
            // Keys snapshot up-front (mutation during the loop does not
            // change the iteration), matching the interpreter.
            for (const auto& e : o->items) {
              keys->items.push_back(VpValue::Heap(NewString(e.key)));
            }
            Push(VpValue::Number(0));
          } else if (subject.IsHeapType(GcType::kArray)) {
            auto* arr = static_cast<GcArray*>(subject.AsHeap());
            GcArray* keys = NewArray();
            Push(VpValue::Heap(keys));
            keys->items.reserve(arr->items.size());
            for (size_t i = 0; i < arr->items.size(); ++i) {
              keys->items.push_back(
                  VpValue::Heap(NewString(Format("%zu", i))));
            }
            Push(VpValue::Number(0));
          } else {
            err = Raise(line, "for-in over a non-object");
            goto unwind;
          }
          VM_NEXT();
        }
        VM_CASE(kForInNext): {
          const uint16_t keys_slot = read_u16();
          const uint16_t exit_off = read_u16();
          auto* keys = static_cast<GcArray*>(
              stack_[frame->base + keys_slot].AsHeap());
          const double idx = stack_[frame->base + keys_slot + 1].AsNumber();
          if (static_cast<size_t>(idx) >= keys->items.size()) {
            ip += exit_off;
          } else {
            stack_[frame->base + keys_slot + 1] = VpValue::Number(idx + 1);
            Push(keys->items[static_cast<size_t>(idx)]);
          }
          VM_NEXT();
        }
        VM_CASE(kRuntimeError): {
          const uint16_t msg_idx = read_u16();
          auto* msg =
              static_cast<GcString*>(proto->constants[msg_idx].AsHeap());
          err = Raise(line_at(), msg->text);
          goto unwind;
        }
    }
    continue;

  unwind:
    // Everything except budget exhaustion is catchable (call-depth
    // errors included), exactly like the tree-walker.
    if (err.code() != StatusCode::kResourceExhausted && !handlers_.empty() &&
        handlers_.back().frame_index >= base_frames) {
      const Handler h = handlers_.back();
      handlers_.pop_back();
      frames_.resize(h.frame_index + 1);
      CloseUpvalues(&stack_[h.sp]);
      sp_ = h.sp;
      GcObject* error_obj = NewObject();
      Push(VpValue::Heap(error_obj));
      error_obj->Set("message", VpValue::Heap(NewString(err.message())));
      error_obj->Set("code",
                     VpValue::Heap(NewString(StatusCodeName(err.code()))));
      frame = &frames_.back();
      proto = frame->closure->proto;
      ip = proto->code.data() + h.ip_offset;
      frame->ip = ip;
      err = Status::Ok();
      continue;
    }
    while (!handlers_.empty() &&
           handlers_.back().frame_index >= base_frames) {
      handlers_.pop_back();
    }
    frames_.resize(base_frames);
    steps_used_ = steps;
    return err;
  }
#undef VM_STEP
#undef VM_CASE
#undef VM_NEXT
}

// -------------------------------------------------------- program entry

uint16_t Vm::AdoptProto(std::unique_ptr<FunctionProto> proto) {
  protos_.push_back(std::move(proto));
  return static_cast<uint16_t>(protos_.size() - 1);
}

uint16_t Vm::GlobalSlot(const std::string& name) {
  const uint32_t id = Interner::Global().Intern(name);
  auto it = global_index_.find(id);
  if (it != global_index_.end()) return it->second;
  const uint16_t slot = static_cast<uint16_t>(globals_.size());
  globals_.push_back(GlobalSlotData{id, name});
  global_index_.emplace(id, slot);
  return slot;
}

void Vm::ImportGlobal(const std::string& name, const Value& v,
                      bool baseline) {
  const uint16_t slot = GlobalSlot(name);
  import_memo_.clear();
  globals_[slot].value = ImportValueRec(v);
  globals_[slot].is_const = false;
  globals_[slot].baseline = baseline;
}

Status Vm::RunTopLevel(const FunctionProto* top) {
  GcClosure* closure = NewClosure(top);
  const size_t base_frames = frames_.size();
  Push(VpValue::Heap(closure));
  depth_base_ = frames_.size() + 1;  // the script frame is depth 0
  Status s = PushFrame(VpValue::Heap(closure), 0, 0);
  if (s.ok()) s = Run(base_frames);
  if (!s.ok()) {
    CloseUpvalues(&stack_[0]);
    sp_ = 0;
    frames_.resize(base_frames);
    return s;
  }
  Pop();  // top-level result, discarded like Context::Load
  return Status::Ok();
}

// ---------------------------------------------------- host entry points

bool Vm::HasGlobal(const std::string& name) const {
  const uint32_t id = Interner::Global().Lookup(name);
  if (id == kNoNameId) return false;
  auto it = global_index_.find(id);
  return it != global_index_.end() && !globals_[it->second].value.is_empty();
}

bool Vm::GlobalIsFunction(const std::string& name) const {
  const uint32_t id = Interner::Global().Lookup(name);
  if (id == kNoNameId) return false;
  auto it = global_index_.find(id);
  return it != global_index_.end() && IsCallable(globals_[it->second].value);
}

Value Vm::GetGlobalBoxed(const std::string& name) {
  const uint32_t id = Interner::Global().Lookup(name);
  if (id == kNoNameId) return Value::Undefined();
  auto it = global_index_.find(id);
  if (it == global_index_.end()) return Value::Undefined();
  const VpValue v = globals_[it->second].value;
  if (v.is_empty()) return Value::Undefined();
  return VmToBoxed(v);
}

Result<Value> Vm::CallGlobal(const std::string& name,
                             std::vector<Value> args) {
  const auto not_found = [&name]() {
    return NotFound("no function '" + name + "' in module");
  };
  const uint32_t id = Interner::Global().Lookup(name);
  if (id == kNoNameId) return not_found();
  auto it = global_index_.find(id);
  if (it == global_index_.end()) return not_found();
  const VpValue fn = globals_[it->second].value;
  if (!IsCallable(fn)) return not_found();

  if (fn.IsHeapType(GcType::kHostFn)) {
    // A host function stored in a global: call it on boxed values
    // directly, no VM frame involved (matches the interpreter).
    auto r = static_cast<GcHostFn*>(fn.AsHeap())->host->fn(args, *interp_);
    if (!r.ok()) return r.error();
    return *r;
  }

  const size_t entry_sp = sp_;
  const size_t base_frames = frames_.size();
  if (sp_ + args.size() + 1 > stack_.size()) {
    return Error(StatusCode::kScriptError, "stack overflow");
  }
  Push(fn);
  import_memo_.clear();  // one conversion: boxed arg sharing preserved
  for (const Value& a : args) Push(ImportValueRec(a));
  depth_base_ = frames_.size();  // the called function is depth 1
  Status s;
  if (fn.IsHeapType(GcType::kClosure)) {
    s = PushFrame(fn, static_cast<int>(args.size()), 0);
    if (s.ok()) s = Run(base_frames);
  } else {
    s = CallNonClosure(fn, static_cast<int>(args.size()), 0);
  }
  if (!s.ok()) {
    CloseUpvalues(&stack_[entry_sp]);
    sp_ = entry_sp;
    frames_.resize(base_frames);
    return s.error();
  }
  return VmToBoxed(Pop());
}

json::Value Vm::SnapshotState() {
  json::Value snapshot = json::Value::MakeObject();
  // Slot order is the interpreter's definition order (hoisted functions
  // first, then vars — see CompileProgram), so keys match across
  // engines.
  for (const GlobalSlotData& g : globals_) {
    if (g.baseline || g.value.is_empty() || g.value.is_undefined()) continue;
    if (IsCallable(g.value)) continue;
    auto j = ScriptToJson(VmToBoxed(g.value));
    if (!j.ok()) continue;  // non-serializable state is skipped
    snapshot[g.name] = std::move(*j);
  }
  return snapshot;
}

void Vm::RestoreState(const json::Value& snapshot) {
  for (const auto& [key, value] : snapshot.AsObject()) {
    const uint16_t slot = GlobalSlot(key);
    import_memo_.clear();
    globals_[slot].value = ImportValueRec(JsonToScript(value));
    globals_[slot].is_const = false;
  }
}

// ------------------------------------------------------ host conversion

VpValue Vm::BoxedToVm(const Value& v) {
  // The memo only lives for one conversion: collections happen solely
  // at instruction boundaries, never mid-conversion, so nothing in the
  // memo needs rooting — and a persistent memo would pin every payload
  // ever imported.
  import_memo_.clear();
  return ImportValueRec(v);
}

Value Vm::VmToBoxed(VpValue v) {
  std::unordered_map<const GcObj*, Value> memo;
  return ExportValueRec(v, memo);
}

VpValue Vm::ImportValueRec(const Value& v) {
  switch (v.type()) {
    case ValueType::kUndefined:
      return VpValue::Undefined();
    case ValueType::kNull:
      return VpValue::Null();
    case ValueType::kBool:
      return VpValue::Boolean(v.AsBool());
    case ValueType::kNumber:
      return VpValue::Number(v.AsNumber());
    case ValueType::kString:
      return VpValue::Heap(NewString(v.AsString()));
    case ValueType::kObject: {
      const void* identity = v.AsObject().get();
      auto it = import_memo_.find(identity);
      if (it != import_memo_.end()) return it->second;
      GcObject* obj = NewObject();
      const VpValue out = VpValue::Heap(obj);
      import_memo_.emplace(identity, out);  // before children: cycles
      for (const auto& e : v.AsObject()->items()) {
        obj->items.push_back(
            GcObject::Entry{e.key_id, e.key, ImportValueRec(e.value)});
      }
      return out;
    }
    case ValueType::kArray: {
      const void* identity = v.AsArray().get();
      auto it = import_memo_.find(identity);
      if (it != import_memo_.end()) return it->second;
      GcArray* arr = NewArray();
      const VpValue out = VpValue::Heap(arr);
      import_memo_.emplace(identity, out);
      for (const Value& item : *v.AsArray()) {
        arr->items.push_back(ImportValueRec(item));
      }
      return out;
    }
    case ValueType::kFunction: {
      // A tree-walker closure escaping into the VM: wrap it as a host
      // function that calls back through the interpreter.
      const Value boxed_fn = v;
      Interpreter* interp = interp_;
      auto host = std::make_shared<HostFunctionValue>();
      host->name = v.AsFunction()->name;
      host->fn = [boxed_fn, interp](std::vector<Value>& args,
                                    Interpreter&) -> Result<Value> {
        return interp->Call(boxed_fn, args);
      };
      return VpValue::Heap(NewHostFn(std::move(host)));
    }
    case ValueType::kHostFunction:
      return VpValue::Heap(NewHostFn(v.AsHostFunction()));
  }
  return VpValue::Undefined();
}

Value Vm::ExportValueRec(VpValue v,
                         std::unordered_map<const GcObj*, Value>& memo) {
  if (v.is_number()) return Value(v.AsNumber());
  if (v.is_undefined() || v.is_empty()) return Value::Undefined();
  if (v.is_null()) return Value(nullptr);
  if (v.is_bool()) return Value(v.AsBool());
  GcObj* obj = v.AsHeap();
  auto it = memo.find(obj);
  if (it != memo.end()) return it->second;
  switch (obj->type) {
    case GcType::kString:
      return Value(static_cast<GcString*>(obj)->text);
    case GcType::kArray: {
      auto out = std::make_shared<ScriptArray>();
      Value result(out);
      memo.emplace(obj, result);
      for (VpValue item : static_cast<GcArray*>(obj)->items) {
        out->push_back(ExportValueRec(item, memo));
      }
      return result;
    }
    case GcType::kObject: {
      auto out = std::make_shared<ScriptObject>();
      Value result(out);
      memo.emplace(obj, result);
      for (const auto& e : static_cast<GcObject*>(obj)->items) {
        if (e.key_id != kNoNameId) {
          out->SetInterned(e.key_id, e.key, ExportValueRec(e.value, memo));
        } else {
          out->Set(e.key, ExportValueRec(e.value, memo));
        }
      }
      return result;
    }
    case GcType::kClosure:
    case GcType::kBoundMethod: {
      // The host-side shared_ptr is invisible to the collector: pin the
      // underlying object for the life of the Vm.
      escaped_.push_back(v);
      auto host = std::make_shared<HostFunctionValue>();
      host->name = obj->type == GcType::kClosure
                       ? static_cast<GcClosure*>(obj)->proto->name
                       : static_cast<GcBoundMethod*>(obj)->name;
      Vm* vm = this;
      const VpValue callee = v;
      host->fn = [vm, callee](std::vector<Value>& args,
                              Interpreter&) -> Result<Value> {
        std::vector<VpValue> vm_args;
        vm_args.reserve(args.size());
        vm->import_memo_.clear();
        for (const Value& a : args) {
          vm_args.push_back(vm->ImportValueRec(a));
        }
        auto r = vm->CallValue(callee, vm_args.data(),
                               static_cast<int>(vm_args.size()), 0);
        if (!r.ok()) return r.error();
        std::unordered_map<const GcObj*, Value> export_memo;
        return vm->ExportValueRec(*r, export_memo);
      };
      Value result(std::move(host));
      memo.emplace(obj, result);
      return result;
    }
    case GcType::kHostFn:
      // Identity round trip: the same shared host function crosses back
      // unchanged (Math.random keeps its seeded Rng).
      return Value(static_cast<GcHostFn*>(obj)->host);
    case GcType::kUpvalue:
      break;  // never escapes
  }
  return Value::Undefined();
}

}  // namespace vp::script
