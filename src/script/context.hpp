// Script contexts.
//
// A Context is the unit of isolation: one per module, mirroring the
// paper's "separate Duktape contexts … spawned inside a single JVM to
// provide isolation without compromising performance" (§3). Each
// context has its own global scope, stdlib instance and step budget;
// host functions (the Table-1 API) are registered by the module
// runtime before the module source is loaded.
#pragma once

#include <memory>
#include <string>

#include "common/error.hpp"
#include "json/value.hpp"
#include "script/interp.hpp"
#include "script/parser.hpp"
#include "script/value.hpp"
#include "script/vm.hpp"

namespace vp::script {

/// Which engine executes module code.
enum class ScriptEngine {
  /// Read VP_SCRIPT_ENGINE from the environment ("vm" / "interp");
  /// defaults to the bytecode VM when unset or unrecognized.
  kAuto,
  /// Bytecode VM with NaN-boxed values and a tracing GC (vm.hpp).
  kVm,
  /// Tree-walking interpreter (interp.hpp). Also the automatic
  /// fallback when resolution is disabled or compilation fails.
  kInterp,
};

struct ContextOptions {
  InterpreterLimits limits;
  /// Seed for this context's Math.random.
  uint64_t random_seed = 1234;
  /// Run the resolver pass (resolver.hpp) on loaded programs. Off
  /// switches the interpreter to its dynamic Environment-only fallback
  /// — same semantics, slower; kept for A/B tests and benchmarks.
  /// The bytecode VM requires resolved programs, so `resolve = false`
  /// also forces the interpreter engine.
  bool resolve = true;
  ScriptEngine engine = ScriptEngine::kAuto;
};

class Context {
 public:
  explicit Context(ContextOptions options = {});
  ~Context();

  /// Expose a host function as a global, e.g. call_service.
  void RegisterHostFunction(const std::string& name, HostFunction fn);

  /// Define an arbitrary global value (configuration constants…).
  void DefineGlobal(const std::string& name, Value v);

  /// Parse + execute module source. Top-level code runs immediately;
  /// function declarations become callable afterwards.
  Status Load(const std::string& source);

  bool HasFunction(const std::string& name) const;

  /// Call a global function by name. Resets the step budget first, so
  /// each event gets the full budget (FaaS-style per-invocation cap).
  Result<Value> Call(const std::string& name, std::vector<Value> args);

  /// Read a global (undefined if absent).
  Value GetGlobal(const std::string& name) const;

  /// Snapshot the module-defined, JSON-serializable globals — the
  /// variables the module source created on top of the baseline
  /// environment (stdlib + host functions are excluded automatically,
  /// functions and other non-serializable values are skipped).
  /// Restoring a snapshot into a freshly-Loaded context of the same
  /// source resumes the module's state — the basis of live module
  /// migration between devices.
  json::Value SnapshotState() const;

  /// Overwrite globals from a snapshot produced by SnapshotState().
  Status RestoreState(const json::Value& snapshot);

  Interpreter& interpreter() { return *interp_; }

  /// Engine actually executing this context's code — resolved from the
  /// options / VP_SCRIPT_ENGINE after Load (compile failures fall back
  /// to the interpreter).
  ScriptEngine engine() const { return engine_; }

  /// The VM backing this context, or nullptr on the interpreter
  /// engine. Exposed for GC instrumentation in tests and benchmarks.
  Vm* vm() { return vm_.get(); }

 private:
  bool resolve_ = true;
  ScriptEngine engine_ = ScriptEngine::kInterp;
  ContextOptions options_;
  std::unique_ptr<Vm> vm_;
  /// One-entry cache for Call's name→binding lookup: the module
  /// runtime invokes the same handler (`event_received`) per event, so
  /// the repeat lookup is a string equality + an index probe instead
  /// of a hash + scan. Verified against the interned id, so a stale
  /// entry (redefined global) degrades to the full lookup.
  std::string call_cache_name_;
  uint32_t call_cache_id_ = kNoNameId;
  uint32_t call_cache_index_ = 0;
  std::shared_ptr<Environment> globals_;
  std::unique_ptr<Interpreter> interp_;
  std::shared_ptr<Program> program_;
  /// Globals present before user code ran (stdlib + host functions) —
  /// excluded from snapshots.
  std::vector<std::string> baseline_globals_;
};

}  // namespace vp::script
