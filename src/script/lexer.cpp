#include "script/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <map>

#include "common/strings.hpp"

namespace vp::script {

const char* TokenTypeName(TokenType t) {
  switch (t) {
    case TokenType::kNumber: return "number";
    case TokenType::kString: return "string";
    case TokenType::kIdentifier: return "identifier";
    case TokenType::kVar: return "var";
    case TokenType::kLet: return "let";
    case TokenType::kConst: return "const";
    case TokenType::kFunction: return "function";
    case TokenType::kReturn: return "return";
    case TokenType::kIf: return "if";
    case TokenType::kElse: return "else";
    case TokenType::kWhile: return "while";
    case TokenType::kFor: return "for";
    case TokenType::kBreak: return "break";
    case TokenType::kContinue: return "continue";
    case TokenType::kTrue: return "true";
    case TokenType::kFalse: return "false";
    case TokenType::kNull: return "null";
    case TokenType::kUndefined: return "undefined";
    case TokenType::kTypeof: return "typeof";
    case TokenType::kIn: return "in";
    case TokenType::kTry: return "try";
    case TokenType::kCatch: return "catch";
    case TokenType::kThrow: return "throw";
    case TokenType::kSwitch: return "switch";
    case TokenType::kCase: return "case";
    case TokenType::kDefault: return "default";
    case TokenType::kDo: return "do";
    case TokenType::kLParen: return "(";
    case TokenType::kRParen: return ")";
    case TokenType::kLBrace: return "{";
    case TokenType::kRBrace: return "}";
    case TokenType::kLBracket: return "[";
    case TokenType::kRBracket: return "]";
    case TokenType::kComma: return ",";
    case TokenType::kSemicolon: return ";";
    case TokenType::kColon: return ":";
    case TokenType::kDot: return ".";
    case TokenType::kQuestion: return "?";
    case TokenType::kAssign: return "=";
    case TokenType::kPlusAssign: return "+=";
    case TokenType::kMinusAssign: return "-=";
    case TokenType::kStarAssign: return "*=";
    case TokenType::kSlashAssign: return "/=";
    case TokenType::kPercentAssign: return "%=";
    case TokenType::kPlus: return "+";
    case TokenType::kMinus: return "-";
    case TokenType::kStar: return "*";
    case TokenType::kSlash: return "/";
    case TokenType::kPercent: return "%";
    case TokenType::kEq: return "==";
    case TokenType::kNe: return "!=";
    case TokenType::kStrictEq: return "===";
    case TokenType::kStrictNe: return "!==";
    case TokenType::kLt: return "<";
    case TokenType::kLe: return "<=";
    case TokenType::kGt: return ">";
    case TokenType::kGe: return ">=";
    case TokenType::kAndAnd: return "&&";
    case TokenType::kOrOr: return "||";
    case TokenType::kNot: return "!";
    case TokenType::kPlusPlus: return "++";
    case TokenType::kMinusMinus: return "--";
    case TokenType::kEof: return "<eof>";
  }
  return "?";
}

namespace {

const std::map<std::string, TokenType, std::less<>>& Keywords() {
  static const std::map<std::string, TokenType, std::less<>> kw = {
      {"var", TokenType::kVar},           {"let", TokenType::kLet},
      {"const", TokenType::kConst},       {"function", TokenType::kFunction},
      {"return", TokenType::kReturn},     {"if", TokenType::kIf},
      {"else", TokenType::kElse},         {"while", TokenType::kWhile},
      {"for", TokenType::kFor},           {"break", TokenType::kBreak},
      {"continue", TokenType::kContinue}, {"true", TokenType::kTrue},
      {"false", TokenType::kFalse},       {"null", TokenType::kNull},
      {"undefined", TokenType::kUndefined},
      {"typeof", TokenType::kTypeof},     {"in", TokenType::kIn},
      {"try", TokenType::kTry},           {"catch", TokenType::kCatch},
      {"throw", TokenType::kThrow},       {"switch", TokenType::kSwitch},
      {"case", TokenType::kCase},         {"default", TokenType::kDefault},
      {"do", TokenType::kDo},
  };
  return kw;
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      if (!SkipTrivia()) return Fail("unterminated block comment");
      if (pos_ >= src_.size()) break;
      auto tok = Next();
      if (!tok.ok()) return tok.error();
      out.push_back(std::move(*tok));
    }
    out.push_back(Make(TokenType::kEof));
    return out;
  }

 private:
  Token Make(TokenType type) {
    Token t;
    t.type = type;
    t.line = line_;
    t.column = col_;
    return t;
  }

  Error Fail(const std::string& what) const {
    return ParseError(Format("script:%d:%d: %s", line_, col_, what.c_str()));
  }

  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Advance() {
    if (Peek() == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  bool SkipTrivia() {
    while (pos_ < src_.size()) {
      const char c = Peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        Advance();
      } else if (c == '/' && Peek(1) == '/') {
        while (pos_ < src_.size() && Peek() != '\n') Advance();
      } else if (c == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (pos_ < src_.size() && !(Peek() == '*' && Peek(1) == '/')) {
          Advance();
        }
        if (pos_ >= src_.size()) return false;
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return true;
  }

  Result<Token> Next() {
    const char c = Peek();
    if (std::isdigit(static_cast<unsigned char>(c))) return Number();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      return IdentifierOrKeyword();
    }
    if (c == '"' || c == '\'') return StringLiteral();
    return Operator();
  }

  Result<Token> Number() {
    Token t = Make(TokenType::kNumber);
    const size_t start = pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      Advance();
      while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    }
    if (Peek() == 'e' || Peek() == 'E') {
      Advance();
      if (Peek() == '+' || Peek() == '-') Advance();
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("malformed exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    }
    const std::string text(src_.substr(start, pos_ - start));
    t.number = std::strtod(text.c_str(), nullptr);
    t.text = text;
    return t;
  }

  Result<Token> IdentifierOrKeyword() {
    Token t = Make(TokenType::kIdentifier);
    const size_t start = pos_;
    while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_' ||
           Peek() == '$') {
      Advance();
    }
    t.text = std::string(src_.substr(start, pos_ - start));
    auto it = Keywords().find(t.text);
    if (it != Keywords().end()) t.type = it->second;
    return t;
  }

  Result<Token> StringLiteral() {
    Token t = Make(TokenType::kString);
    const char quote = Peek();
    Advance();
    std::string out;
    while (pos_ < src_.size() && Peek() != quote) {
      char c = Peek();
      if (c == '\n') return Fail("newline in string literal");
      if (c == '\\') {
        Advance();
        const char e = Peek();
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case '\\': out += '\\'; break;
          case '\'': out += '\''; break;
          case '"': out += '"'; break;
          case '0': out += '\0'; break;
          default: return Fail(Format("unknown escape '\\%c'", e));
        }
        Advance();
        continue;
      }
      out += c;
      Advance();
    }
    if (pos_ >= src_.size()) return Fail("unterminated string literal");
    Advance();  // closing quote
    t.text = std::move(out);
    return t;
  }

  Result<Token> Operator() {
    const char c = Peek();
    const char c1 = Peek(1);
    const char c2 = Peek(2);
    auto take = [&](TokenType type, int n) -> Token {
      Token t = Make(type);
      for (int i = 0; i < n; ++i) Advance();
      return t;
    };
    switch (c) {
      case '(': return take(TokenType::kLParen, 1);
      case ')': return take(TokenType::kRParen, 1);
      case '{': return take(TokenType::kLBrace, 1);
      case '}': return take(TokenType::kRBrace, 1);
      case '[': return take(TokenType::kLBracket, 1);
      case ']': return take(TokenType::kRBracket, 1);
      case ',': return take(TokenType::kComma, 1);
      case ';': return take(TokenType::kSemicolon, 1);
      case ':': return take(TokenType::kColon, 1);
      case '.': return take(TokenType::kDot, 1);
      case '?': return take(TokenType::kQuestion, 1);
      case '+':
        if (c1 == '+') return take(TokenType::kPlusPlus, 2);
        if (c1 == '=') return take(TokenType::kPlusAssign, 2);
        return take(TokenType::kPlus, 1);
      case '-':
        if (c1 == '-') return take(TokenType::kMinusMinus, 2);
        if (c1 == '=') return take(TokenType::kMinusAssign, 2);
        return take(TokenType::kMinus, 1);
      case '*':
        if (c1 == '=') return take(TokenType::kStarAssign, 2);
        return take(TokenType::kStar, 1);
      case '/':
        if (c1 == '=') return take(TokenType::kSlashAssign, 2);
        return take(TokenType::kSlash, 1);
      case '%':
        if (c1 == '=') return take(TokenType::kPercentAssign, 2);
        return take(TokenType::kPercent, 1);
      case '=':
        if (c1 == '=' && c2 == '=') return take(TokenType::kStrictEq, 3);
        if (c1 == '=') return take(TokenType::kEq, 2);
        return take(TokenType::kAssign, 1);
      case '!':
        if (c1 == '=' && c2 == '=') return take(TokenType::kStrictNe, 3);
        if (c1 == '=') return take(TokenType::kNe, 2);
        return take(TokenType::kNot, 1);
      case '<':
        if (c1 == '=') return take(TokenType::kLe, 2);
        return take(TokenType::kLt, 1);
      case '>':
        if (c1 == '=') return take(TokenType::kGe, 2);
        return take(TokenType::kGt, 1);
      case '&':
        if (c1 == '&') return take(TokenType::kAndAnd, 2);
        break;
      case '|':
        if (c1 == '|') return take(TokenType::kOrOr, 2);
        break;
      default:
        break;
    }
    return Fail(Format("unexpected character '%c'", c));
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  return Lexer(source).Run();
}

}  // namespace vp::script
