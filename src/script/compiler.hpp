// vpscript bytecode compiler.
//
// Single-pass AST → bytecode translation in the clox mold: each
// function compiles with its own scope tracker (stack-slot locals,
// lexical upvalue resolution), nested functions compile inline into
// child FunctionProtos adopted by the Vm.
//
// The tree the compiler consumes is the interpreter's: to keep the two
// engines bit-identical (ResolverEquivalence / ErrorsMatchAcrossModes
// extend across engines) the compiler re-derives scope layout itself
// rather than reusing the resolver's slot frames — the resolver only
// slots capture-free functions, the VM slots everything.
//
// Semantics mirrored from interp.cpp, notably:
//  * `var` is block-scoped; a declaration executes at its statement
//    (reads earlier in the block resolve outward), so block entry
//    reserves slots that stay invisible until the declaration runs;
//  * function declarations hoist per block;
//  * compound assignment / ++ / -- evaluate their target expression
//    twice (read then write), exactly as the tree-walker does;
//  * `const` violations are runtime errors (dead branches may contain
//    them) — the compiler emits kRuntimeError instead of failing.
//
// A compile error (pathological nesting blowing a u16 operand) is
// returned as a Status; the Context then falls back to the
// tree-walking interpreter, which has no such limits.
#pragma once

#include "common/error.hpp"
#include "script/ast.hpp"

namespace vp::script {

class Vm;
struct FunctionProto;

/// Compile `program` into `vm` (protos + global slots). Returns the
/// top-level proto to pass to Vm::RunTopLevel.
Result<const FunctionProto*> CompileProgram(const Program& program, Vm& vm);

}  // namespace vp::script
