#include "script/convert.hpp"

namespace vp::script {

Value JsonToScript(const json::Value& v) {
  switch (v.type()) {
    case json::Type::kNull: return Value(nullptr);
    case json::Type::kBool: return Value(v.AsBool());
    case json::Type::kNumber: return Value(v.AsDouble());
    case json::Type::kString: return Value(v.AsString());
    case json::Type::kArray: {
      auto arr = std::make_shared<ScriptArray>();
      arr->reserve(v.AsArray().size());
      for (const auto& item : v.AsArray()) arr->push_back(JsonToScript(item));
      return Value(std::move(arr));
    }
    case json::Type::kObject: {
      auto obj = std::make_shared<ScriptObject>();
      for (const auto& [k, item] : v.AsObject()) {
        obj->Set(k, JsonToScript(item));
      }
      return Value(std::move(obj));
    }
  }
  return Value(nullptr);
}

Result<json::Value> ScriptToJson(const Value& v) {
  switch (v.type()) {
    case ValueType::kUndefined:
    case ValueType::kNull:
      return json::Value(nullptr);
    case ValueType::kBool:
      return json::Value(v.AsBool());
    case ValueType::kNumber:
      return json::Value(v.AsNumber());
    case ValueType::kString:
      return json::Value(v.AsString());
    case ValueType::kArray: {
      json::Value::Array arr;
      arr.reserve(v.AsArray()->size());
      for (const Value& item : *v.AsArray()) {
        auto j = ScriptToJson(item);
        if (!j.ok()) return j;
        arr.push_back(std::move(*j));
      }
      return json::Value(std::move(arr));
    }
    case ValueType::kObject: {
      json::Value::Object obj;
      for (const auto& entry : v.AsObject()->items()) {
        auto j = ScriptToJson(entry.value);
        if (!j.ok()) return j;
        obj[entry.key] = std::move(*j);
      }
      return json::Value(std::move(obj));
    }
    case ValueType::kFunction:
    case ValueType::kHostFunction:
      return ScriptError("cannot serialize a function to JSON");
  }
  return ScriptError("unknown value type");
}

}  // namespace vp::script
