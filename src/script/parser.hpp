// vpscript recursive-descent parser.
#pragma once

#include <memory>

#include "common/error.hpp"
#include "script/ast.hpp"

namespace vp::script {

/// Parse a complete program. Errors carry line/column positions.
Result<std::shared_ptr<Program>> ParseProgram(std::string_view source);

}  // namespace vp::script
