#include "script/compiler.hpp"

#include <memory>
#include <string>
#include <vector>

#include "script/intern.hpp"
#include "script/vm.hpp"

namespace vp::script {
namespace {

struct LocalVar {
  std::string name;
  int depth;
  bool is_const;
  /// A slot is reserved at block entry but stays invisible to direct
  /// references until its declaration statement compiles — mirrors the
  /// interpreter, where `var` defines at execution and earlier reads
  /// in the block resolve outward.
  bool visible;
};

struct UpvalInfo {
  bool from_local;
  uint16_t index;
  bool is_const;
};

struct LoopCtx {
  bool accepts_continue;  // loops yes, switch no (continue passes through)
  int break_depth;        // scope depth `break` unwinds locals to
  int continue_depth;     // scope depth `continue` unwinds locals to
  int handler_depth;      // try-handlers open when the construct began
  bool continue_backward = false;
  size_t continue_target = 0;            // when continue_backward
  std::vector<size_t> break_jumps;
  std::vector<size_t> continue_jumps;    // when !continue_backward
};

/// Abstract interpretation of a proto's bytecode computing the maximum
/// value-stack depth (relative to the frame base) any execution of the
/// body can reach. Stack discipline is static — the depth at every
/// code offset is a pure function of the instruction stream — so a
/// worklist walk over the control-flow graph gives an exact bound.
/// PushFrame checks base + max_stack once per call, which is what
/// makes every unchecked Push() inside the dispatch loop safe
/// (including array/object literals of up to 0xffff elements, which
/// can exceed any fixed per-call headroom).
uint32_t ComputeMaxStack(const FunctionProto& proto) {
  const std::vector<uint8_t>& code = proto.code;
  // Largest depth seen reaching each offset; -1 = not yet visited.
  // A merge point is re-propagated only when a larger depth arrives,
  // so the walk terminates with per-point maxima.
  std::vector<int32_t> depth_at(code.size(), -1);
  std::vector<size_t> worklist;
  int32_t max_depth = 1 + proto.arity;  // entry: callee slot + parameters
  auto schedule = [&](size_t off, int32_t depth) {
    if (off >= code.size()) return;
    if (depth_at[off] >= depth) return;
    depth_at[off] = depth;
    if (depth > max_depth) max_depth = depth;
    worklist.push_back(off);
  };
  schedule(0, 1 + proto.arity);
  while (!worklist.empty()) {
    const size_t off = worklist.back();
    worklist.pop_back();
    const int32_t depth = depth_at[off];
    const Op op = static_cast<Op>(code[off]);
    auto u16 = [&code](size_t at) {
      return static_cast<uint16_t>(
          code[at] | (static_cast<uint16_t>(code[at + 1]) << 8));
    };
    size_t next = off + 1;
    int32_t delta = 0;
    switch (op) {
      case Op::kUndefined:
      case Op::kNull:
      case Op::kTrue:
      case Op::kFalse:
      case Op::kDup:
      case Op::kForInInit:  // pops the subject, pushes keys + index
        delta = 1;
        break;
      case Op::kConst:
      case Op::kGetLocal:
      case Op::kGetUpvalue:
      case Op::kGetGlobal:
      case Op::kClosure:
        delta = 1;
        next += 2;
        break;
      case Op::kUndefN:
        delta = static_cast<int32_t>(u16(next));
        next += 2;
        break;
      case Op::kPop:
      case Op::kGetIndex:
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod:
      case Op::kEq:
      case Op::kNe:
      case Op::kStrictEq:
      case Op::kStrictNe:
      case Op::kLt:
      case Op::kLe:
      case Op::kGt:
      case Op::kGe:
        delta = -1;
        break;
      case Op::kPopN:
      case Op::kCloseScope:
        delta = -static_cast<int32_t>(u16(next));
        next += 2;
        break;
      case Op::kSwap:
      case Op::kRot3:
      case Op::kNegate:
      case Op::kToNumber:
      case Op::kNot:
      case Op::kTypeof:
      case Op::kInc:
      case Op::kDec:
      case Op::kPopHandler:
        break;
      case Op::kSetLocal:
      case Op::kSetUpvalue:
      case Op::kSetGlobal:
      case Op::kGetProp:
        next += 2;
        break;
      case Op::kSetIndex:
        delta = -2;
        break;
      case Op::kDefineGlobal:
      case Op::kDefineGlobalConst:
      case Op::kSetProp:
        delta = -1;
        next += 2;
        break;
      case Op::kArray:
        delta = 1 - static_cast<int32_t>(u16(next));
        next += 2;
        break;
      case Op::kObject:
        delta = 1 - 2 * static_cast<int32_t>(u16(next));
        next += 2;
        break;
      case Op::kCall:  // pops callee + argc, pushes the result
        delta = -static_cast<int32_t>(code[next]);
        next += 1;
        break;
      case Op::kInvoke:  // pops receiver + argc, pushes the result
        delta = -static_cast<int32_t>(code[next + 2]);
        next += 3;
        break;
      case Op::kJump: {
        const uint16_t jump = u16(next);
        next += 2;
        schedule(next + jump, depth);
        continue;  // no fallthrough
      }
      case Op::kLoop: {
        const uint16_t jump = u16(next);
        next += 2;
        schedule(next - jump, depth);
        continue;
      }
      case Op::kJumpIfFalse:
      case Op::kJumpIfTrue: {
        const uint16_t jump = u16(next);
        next += 2;
        schedule(next + jump, depth - 1);
        schedule(next, depth - 1);
        continue;
      }
      case Op::kJumpIfFalsePeek:
      case Op::kJumpIfTruePeek: {
        const uint16_t jump = u16(next);
        next += 2;
        schedule(next + jump, depth);
        schedule(next, depth);
        continue;
      }
      case Op::kPushHandler: {
        // The unwinder restores sp to the handler's recorded depth and
        // pushes the error object before entering the catch target.
        const uint16_t jump = u16(next);
        next += 2;
        schedule(next + jump, depth + 1);
        schedule(next, depth);
        continue;
      }
      case Op::kForInNext: {
        const uint16_t exit = u16(next + 2);
        next += 4;
        schedule(next + exit, depth);  // exhausted: nothing pushed
        schedule(next, depth + 1);     // next key pushed
        continue;
      }
      case Op::kReturn:
      case Op::kReturnUndef:
      case Op::kThrow:
      case Op::kRuntimeError:
        continue;  // terminal
    }
    schedule(next, depth + delta);
  }
  return static_cast<uint32_t>(max_depth);
}

OpCode BinaryFromSpelling(const std::string& op) {
  if (op == "+") return OpCode::kAdd;
  if (op == "-") return OpCode::kSub;
  if (op == "*") return OpCode::kMul;
  if (op == "/") return OpCode::kDiv;
  if (op == "%") return OpCode::kMod;
  if (op == "==") return OpCode::kEq;
  if (op == "!=") return OpCode::kNe;
  if (op == "===") return OpCode::kStrictEq;
  if (op == "!==") return OpCode::kStrictNe;
  if (op == "<") return OpCode::kLt;
  if (op == "<=") return OpCode::kLe;
  if (op == ">") return OpCode::kGt;
  if (op == ">=") return OpCode::kGe;
  return OpCode::kNone;
}

class FnCompiler {
 public:
  FnCompiler(Vm& vm, FnCompiler* enclosing, bool is_script, std::string name,
             int arity, Status* error)
      : vm_(vm), enclosing_(enclosing), is_script_(is_script), error_(error) {
    proto_ = std::make_unique<FunctionProto>();
    proto_->name = std::move(name);
    proto_->arity = arity;
  }

  // ---------------------------------------------------------- top level

  void CompileTopLevel(const std::vector<StmtPtr>& stmts) {
    AddLocal("(script)", false, false);  // slot 0: the script closure
    // Function declarations hoist to globals before any statement runs.
    for (const StmtPtr& stmt : stmts) {
      if (stmt->kind == StmtKind::kFunction) {
        CompileFunctionBody(stmt->name, stmt->params, stmt->body, stmt->line,
                            /*bind_self=*/false);
        EmitOp(Op::kDefineGlobal, stmt->line);
        EmitU16(vm_.GlobalSlot(stmt->name));
      }
    }
    for (const StmtPtr& stmt : stmts) {
      if (stmt->kind == StmtKind::kFunction) continue;
      CompileStmt(*stmt);
    }
    EmitOp(Op::kReturnUndef, 0);
  }

  std::unique_ptr<FunctionProto> TakeProto() {
    proto_->upvalues.reserve(upvals_.size());
    for (const UpvalInfo& u : upvals_) {
      proto_->upvalues.push_back(UpvalDesc{u.from_local, u.index});
    }
    proto_->max_stack = ComputeMaxStack(*proto_);
    return std::move(proto_);
  }

 private:
  // --------------------------------------------------------- emit layer

  size_t Here() const { return proto_->code.size(); }

  void EmitByte(uint8_t b, int line) {
    proto_->code.push_back(b);
    proto_->lines.push_back(line);
  }
  void EmitOp(Op op, int line) { EmitByte(static_cast<uint8_t>(op), line); }
  void EmitU16(uint16_t v) {
    const int line = proto_->lines.empty() ? 0 : proto_->lines.back();
    EmitByte(static_cast<uint8_t>(v & 0xff), line);
    EmitByte(static_cast<uint8_t>(v >> 8), line);
  }

  /// Emit a forward jump with a placeholder offset; returns the operand
  /// position for PatchJump.
  size_t EmitJump(Op op, int line) {
    EmitOp(op, line);
    EmitU16(0xffff);
    return Here() - 2;
  }

  void PatchJump(size_t operand_pos) {
    const size_t offset = Here() - (operand_pos + 2);
    if (offset > 0xffff) {
      Fail("jump too long");
      return;
    }
    proto_->code[operand_pos] = static_cast<uint8_t>(offset & 0xff);
    proto_->code[operand_pos + 1] = static_cast<uint8_t>(offset >> 8);
  }

  void PatchJumpTo(size_t operand_pos, size_t target) {
    const size_t offset = target - (operand_pos + 2);
    if (offset > 0xffff) {
      Fail("jump too long");
      return;
    }
    proto_->code[operand_pos] = static_cast<uint8_t>(offset & 0xff);
    proto_->code[operand_pos + 1] = static_cast<uint8_t>(offset >> 8);
  }

  void EmitLoop(size_t target, int line) {
    EmitOp(Op::kLoop, line);
    const size_t offset = Here() + 2 - target;
    if (offset > 0xffff) {
      Fail("loop body too long");
      EmitU16(0);
      return;
    }
    EmitU16(static_cast<uint16_t>(offset));
  }

  uint16_t AddConstant(VpValue v) {
    if (proto_->constants.size() >= 0xffff) Fail("too many constants");
    proto_->constants.push_back(v);
    return static_cast<uint16_t>(proto_->constants.size() - 1);
  }

  uint16_t NumberConst(double d) {
    const VpValue v = VpValue::Number(d);
    for (size_t i = 0; i < proto_->constants.size(); ++i) {
      if (proto_->constants[i].bits == v.bits) return static_cast<uint16_t>(i);
    }
    return AddConstant(v);
  }

  uint16_t StringConst(const std::string& s, uint32_t name_id = kNoNameId) {
    for (size_t i = 0; i < proto_->constants.size(); ++i) {
      const VpValue& c = proto_->constants[i];
      if (!c.IsHeapType(GcType::kString)) continue;
      auto* gs = static_cast<GcString*>(c.AsHeap());
      if (gs->text == s && gs->name_id == name_id) {
        return static_cast<uint16_t>(i);
      }
    }
    GcString* gs = vm_.NewString(s);
    gs->name_id = name_id;
    return AddConstant(VpValue::Heap(gs));
  }

  /// Name constant for property access: interned so the VM dispatches
  /// array methods and object lookups on integer ids.
  uint16_t NameConst(const std::string& name, uint32_t name_id) {
    if (name_id == kNoNameId) name_id = Interner::Global().Intern(name);
    return StringConst(name, name_id);
  }

  void EmitRuntimeError(const std::string& message, int line) {
    EmitOp(Op::kRuntimeError, line);
    EmitU16(StringConst(message));
  }

  void Fail(const std::string& what) {
    if (error_->ok()) {
      *error_ = Status(StatusCode::kInternal, "script compile: " + what);
    }
  }

  // ------------------------------------------------------------- scopes

  void BeginScope() { ++scope_depth_; }

  void EndScope(int line) {
    int n = 0;
    while (!locals_.empty() && locals_.back().depth == scope_depth_) {
      locals_.pop_back();
      ++n;
    }
    --scope_depth_;
    EmitScopeExit(n, line);
  }

  /// kCloseScope unconditionally: whether any of the slots is captured
  /// can depend on code that has not compiled yet (a later closure in
  /// the same block observed by an earlier `break`), so the runtime
  /// check — one pointer compare when no upvalue is open — stays.
  void EmitScopeExit(int n, int line) {
    if (n == 0) return;
    EmitOp(Op::kCloseScope, line);
    EmitU16(static_cast<uint16_t>(n));
  }

  /// break/continue: pop the locals of every scope deeper than `depth`
  /// without touching compile-time bookkeeping (the block continues).
  void DiscardLocalsDownTo(int depth, int line) {
    int n = 0;
    for (int i = static_cast<int>(locals_.size()) - 1;
         i >= 0 && locals_[i].depth > depth; --i) {
      ++n;
    }
    EmitScopeExit(n, line);
  }

  uint16_t AddLocal(std::string name, bool is_const, bool visible) {
    if (locals_.size() >= 0xffff) Fail("too many locals");
    locals_.push_back(LocalVar{std::move(name), scope_depth_, is_const,
                               visible});
    return static_cast<uint16_t>(locals_.size() - 1);
  }

  int ResolveLocal(const std::string& name) const {
    for (int i = static_cast<int>(locals_.size()) - 1; i >= 0; --i) {
      if (locals_[i].visible && locals_[i].name == name) return i;
    }
    return -1;
  }

  /// Capture resolution ignores visibility: a hoisted function may
  /// close over a `var` declared later in the same block (the cell is
  /// the block's slot either way).
  int ResolveLocalForCapture(const std::string& name) const {
    for (int i = static_cast<int>(locals_.size()) - 1; i >= 0; --i) {
      if (locals_[i].name == name) return i;
    }
    return -1;
  }

  int FindLocalAtCurrentDepth(const std::string& name) const {
    for (int i = static_cast<int>(locals_.size()) - 1; i >= 0; --i) {
      if (locals_[i].depth < scope_depth_) break;
      if (locals_[i].name == name) return i;
    }
    return -1;
  }

  int AddUpvalue(bool from_local, uint16_t index, bool is_const) {
    for (size_t i = 0; i < upvals_.size(); ++i) {
      if (upvals_[i].from_local == from_local && upvals_[i].index == index) {
        return static_cast<int>(i);
      }
    }
    if (upvals_.size() >= 0xffff) Fail("too many upvalues");
    upvals_.push_back(UpvalInfo{from_local, index, is_const});
    return static_cast<int>(upvals_.size() - 1);
  }

  int ResolveUpvalue(const std::string& name) {
    if (enclosing_ == nullptr) return -1;
    const int local = enclosing_->ResolveLocalForCapture(name);
    if (local != -1) {
      return AddUpvalue(true, static_cast<uint16_t>(local),
                        enclosing_->locals_[local].is_const);
    }
    const int up = enclosing_->ResolveUpvalue(name);
    if (up != -1) {
      return AddUpvalue(false, static_cast<uint16_t>(up),
                        enclosing_->upvals_[up].is_const);
    }
    return -1;
  }

  void EmitLoad(const std::string& name, int line) {
    const int slot = ResolveLocal(name);
    if (slot != -1) {
      EmitOp(Op::kGetLocal, line);
      EmitU16(static_cast<uint16_t>(slot));
      return;
    }
    const int up = ResolveUpvalue(name);
    if (up != -1) {
      EmitOp(Op::kGetUpvalue, line);
      EmitU16(static_cast<uint16_t>(up));
      return;
    }
    EmitOp(Op::kGetGlobal, line);
    EmitU16(vm_.GlobalSlot(name));
  }

  /// Store-with-peek: value stays on the stack (assignment result).
  void EmitStore(const std::string& name, int line) {
    const int slot = ResolveLocal(name);
    if (slot != -1) {
      if (locals_[slot].is_const) {
        EmitRuntimeError("assignment to const '" + name + "'", line);
        return;
      }
      EmitOp(Op::kSetLocal, line);
      EmitU16(static_cast<uint16_t>(slot));
      return;
    }
    const int up = ResolveUpvalue(name);
    if (up != -1) {
      if (upvals_[up].is_const) {
        EmitRuntimeError("assignment to const '" + name + "'", line);
        return;
      }
      EmitOp(Op::kSetUpvalue, line);
      EmitU16(static_cast<uint16_t>(up));
      return;
    }
    // Globals carry const/undeclared state only at runtime.
    EmitOp(Op::kSetGlobal, line);
    EmitU16(vm_.GlobalSlot(name));
  }

  // ------------------------------------------------------------- blocks

  bool AtGlobalScope() const { return is_script_ && scope_depth_ == 0; }

  /// Reserve one slot per var/function declared directly in `stmts`
  /// (deduplicated: redeclaration overwrites in place, like
  /// Environment::Define).
  void DeclareBlockLocals(const std::vector<StmtPtr>& stmts) {
    int fresh = 0;
    for (const StmtPtr& stmt : stmts) {
      if (stmt->kind != StmtKind::kVarDecl &&
          stmt->kind != StmtKind::kFunction) {
        continue;
      }
      if (FindLocalAtCurrentDepth(stmt->name) != -1) continue;
      AddLocal(stmt->name, stmt->is_const, false);
      ++fresh;
    }
    if (fresh > 0) {
      const int line = stmts.empty() ? 0 : stmts.front()->line;
      EmitOp(Op::kUndefN, line);
      EmitU16(static_cast<uint16_t>(fresh));
    }
  }

  void HoistFunctions(const std::vector<StmtPtr>& stmts) {
    for (const StmtPtr& stmt : stmts) {
      if (stmt->kind != StmtKind::kFunction) continue;
      CompileFunctionBody(stmt->name, stmt->params, stmt->body, stmt->line,
                          /*bind_self=*/false);
      const int slot = FindLocalAtCurrentDepth(stmt->name);
      EmitOp(Op::kSetLocal, stmt->line);
      EmitU16(static_cast<uint16_t>(slot));
      EmitOp(Op::kPop, stmt->line);
      locals_[slot].visible = true;
    }
  }

  void CompileBlockInCurrentScope(const std::vector<StmtPtr>& stmts) {
    DeclareBlockLocals(stmts);
    HoistFunctions(stmts);
    for (const StmtPtr& stmt : stmts) {
      if (stmt->kind == StmtKind::kFunction) continue;
      CompileStmt(*stmt);
    }
  }

  void CompileScopedBlock(const std::vector<StmtPtr>& stmts, int line) {
    BeginScope();
    CompileBlockInCurrentScope(stmts);
    EndScope(line);
  }

  // --------------------------------------------------------- statements

  void CompileStmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kExpr:
        CompileExpr(*stmt.expr);
        EmitOp(Op::kPop, stmt.line);
        return;
      case StmtKind::kVarDecl:
        CompileVarDecl(stmt);
        return;
      case StmtKind::kFunction:
        // Hoisted by the enclosing block; nothing executes here.
        return;
      case StmtKind::kReturn:
        if (stmt.expr) {
          CompileExpr(*stmt.expr);
          EmitOp(Op::kReturn, stmt.line);
        } else {
          EmitOp(Op::kReturnUndef, stmt.line);
        }
        return;
      case StmtKind::kIf: {
        CompileExpr(*stmt.expr);
        const size_t jf = EmitJump(Op::kJumpIfFalse, stmt.line);
        CompileScopedBlock(stmt.then_branch, stmt.line);
        if (!stmt.else_branch.empty()) {
          const size_t jend = EmitJump(Op::kJump, stmt.line);
          PatchJump(jf);
          CompileScopedBlock(stmt.else_branch, stmt.line);
          PatchJump(jend);
        } else {
          PatchJump(jf);
        }
        return;
      }
      case StmtKind::kWhile: {
        const size_t loop_start = Here();
        CompileExpr(*stmt.expr);
        const size_t exit = EmitJump(Op::kJumpIfFalse, stmt.line);
        loops_.push_back(LoopCtx{true, scope_depth_, scope_depth_,
                                 handler_depth_, true, loop_start});
        CompileScopedBlock(stmt.body, stmt.line);
        EmitLoop(loop_start, stmt.line);
        PatchJump(exit);
        FinishLoop(stmt.line);
        return;
      }
      case StmtKind::kDoWhile: {
        const size_t loop_start = Here();
        loops_.push_back(LoopCtx{true, scope_depth_, scope_depth_,
                                 handler_depth_, false, 0});
        CompileScopedBlock(stmt.body, stmt.line);
        // continue lands on the condition (evaluated in the outer
        // scope, exactly like the interpreter).
        const size_t cond_pos = Here();
        for (const size_t j : loops_.back().continue_jumps) {
          PatchJumpTo(j, cond_pos);
        }
        loops_.back().continue_jumps.clear();
        CompileExpr(*stmt.expr);
        const size_t exit = EmitJump(Op::kJumpIfFalse, stmt.line);
        EmitLoop(loop_start, stmt.line);
        PatchJump(exit);
        FinishLoop(stmt.line);
        return;
      }
      case StmtKind::kFor:
        CompileFor(stmt);
        return;
      case StmtKind::kForIn:
        CompileForIn(stmt);
        return;
      case StmtKind::kBlock:
        CompileScopedBlock(stmt.body, stmt.line);
        return;
      case StmtKind::kBreak: {
        LoopCtx* ctx = loops_.empty() ? nullptr : &loops_.back();
        if (ctx == nullptr) {
          EmitRuntimeError("break/continue outside a loop", stmt.line);
          return;
        }
        EmitHandlerPops(ctx->handler_depth, stmt.line);
        DiscardLocalsDownTo(ctx->break_depth, stmt.line);
        loops_.back().break_jumps.push_back(EmitJump(Op::kJump, stmt.line));
        return;
      }
      case StmtKind::kContinue: {
        LoopCtx* ctx = nullptr;
        for (int i = static_cast<int>(loops_.size()) - 1; i >= 0; --i) {
          if (loops_[i].accepts_continue) {
            ctx = &loops_[i];
            break;
          }
        }
        if (ctx == nullptr) {
          EmitRuntimeError("break/continue outside a loop", stmt.line);
          return;
        }
        EmitHandlerPops(ctx->handler_depth, stmt.line);
        DiscardLocalsDownTo(ctx->continue_depth, stmt.line);
        if (ctx->continue_backward) {
          EmitLoop(ctx->continue_target, stmt.line);
        } else {
          ctx->continue_jumps.push_back(EmitJump(Op::kJump, stmt.line));
        }
        return;
      }
      case StmtKind::kTry:
        CompileTry(stmt);
        return;
      case StmtKind::kThrow:
        CompileExpr(*stmt.expr);
        EmitOp(Op::kThrow, stmt.line);
        return;
      case StmtKind::kSwitch:
        CompileSwitch(stmt);
        return;
    }
    Fail("unhandled statement");
  }

  void CompileVarDecl(const Stmt& stmt) {
    if (stmt.expr) {
      CompileExpr(*stmt.expr);
    } else {
      EmitOp(Op::kUndefined, stmt.line);
    }
    if (AtGlobalScope()) {
      EmitOp(stmt.is_const ? Op::kDefineGlobalConst : Op::kDefineGlobal,
             stmt.line);
      EmitU16(vm_.GlobalSlot(stmt.name));
      return;
    }
    const int slot = FindLocalAtCurrentDepth(stmt.name);
    if (slot == -1) {
      Fail("declaration without a reserved slot");
      return;
    }
    EmitOp(Op::kSetLocal, stmt.line);
    EmitU16(static_cast<uint16_t>(slot));
    EmitOp(Op::kPop, stmt.line);
    locals_[slot].visible = true;
    locals_[slot].is_const = stmt.is_const;
  }

  void CompileFor(const Stmt& stmt) {
    const int outer_depth = scope_depth_;
    BeginScope();  // loop scope: the induction variable, shared across
                   // iterations (closures over it see one cell)
    if (stmt.init) {
      if (stmt.init->kind == StmtKind::kVarDecl) {
        if (stmt.init->expr) {
          CompileExpr(*stmt.init->expr);
        } else {
          EmitOp(Op::kUndefined, stmt.init->line);
        }
        AddLocal(stmt.init->name, stmt.init->is_const, true);
      } else {
        CompileStmt(*stmt.init);
      }
    }
    const size_t loop_start = Here();
    size_t exit = 0;
    if (stmt.condition) {
      CompileExpr(*stmt.condition);
      exit = EmitJump(Op::kJumpIfFalse, stmt.line);
    }
    loops_.push_back(LoopCtx{true, outer_depth, scope_depth_, handler_depth_,
                             false, 0});
    // Per-iteration body scope: body-declared locals close every
    // iteration, so closures capture per-iteration cells.
    CompileScopedBlock(stmt.body, stmt.line);
    const size_t step_pos = Here();
    for (const size_t j : loops_.back().continue_jumps) {
      PatchJumpTo(j, step_pos);
    }
    loops_.back().continue_jumps.clear();
    if (stmt.step) {
      CompileExpr(*stmt.step);
      EmitOp(Op::kPop, stmt.line);
    }
    EmitLoop(loop_start, stmt.line);
    if (stmt.condition) PatchJump(exit);
    EndScope(stmt.line);
    FinishLoop(stmt.line);
  }

  void CompileForIn(const Stmt& stmt) {
    const int outer_depth = scope_depth_;
    CompileExpr(*stmt.expr);
    BeginScope();  // hidden key-iteration state
    EmitOp(Op::kForInInit, stmt.line);
    const uint16_t keys_slot = AddLocal("(forin keys)", false, false);
    AddLocal("(forin idx)", false, false);
    const size_t next_pos = Here();
    EmitOp(Op::kForInNext, stmt.line);
    EmitU16(keys_slot);
    EmitU16(0xffff);
    const size_t exit_operand = Here() - 2;
    loops_.push_back(LoopCtx{true, outer_depth, scope_depth_, handler_depth_,
                             true, next_pos});
    BeginScope();  // per-iteration: loop variable + body locals
    AddLocal(stmt.name, false, true);
    CompileBlockInCurrentScope(stmt.body);
    EndScope(stmt.line);
    EmitLoop(next_pos, stmt.line);
    PatchJump(exit_operand);
    EndScope(stmt.line);  // pops keys + idx
    FinishLoop(stmt.line);
  }

  void CompileTry(const Stmt& stmt) {
    EmitOp(Op::kPushHandler, stmt.line);
    EmitU16(0xffff);
    const size_t handler_operand = Here() - 2;
    ++handler_depth_;
    CompileScopedBlock(stmt.body, stmt.line);
    --handler_depth_;
    EmitOp(Op::kPopHandler, stmt.line);
    const size_t jend = EmitJump(Op::kJump, stmt.line);
    PatchJump(handler_operand);  // catch target: unwinder pushed the
                                 // error object, which becomes the
                                 // catch binding's slot
    BeginScope();
    AddLocal(stmt.name.empty() ? "(catch)" : stmt.name, false, true);
    CompileBlockInCurrentScope(stmt.else_branch);
    EndScope(stmt.line);
    PatchJump(jend);
  }

  void CompileSwitch(const Stmt& stmt) {
    const int outer_depth = scope_depth_;
    CompileExpr(*stmt.expr);  // discriminant, evaluated in outer scope
    BeginScope();
    const uint16_t disc_slot = AddLocal("(switch)", false, false);
    // One shared scope across all cases (slot-mode interpreter
    // semantics): every case-declared var gets a slot, reset to
    // undefined on switch entry.
    for (const SwitchCase& c : stmt.cases) DeclareBlockLocals(c.body);
    loops_.push_back(LoopCtx{false, outer_depth, outer_depth, handler_depth_,
                             false, 0});
    // Dispatch: strict-equality tests in case order, default last.
    std::vector<size_t> case_jumps(stmt.cases.size(), 0);
    int default_index = -1;
    for (size_t i = 0; i < stmt.cases.size(); ++i) {
      if (!stmt.cases[i].test) {
        default_index = static_cast<int>(i);
        continue;
      }
      CompileExpr(*stmt.cases[i].test);
      EmitOp(Op::kGetLocal, stmt.line);
      EmitU16(disc_slot);
      EmitOp(Op::kStrictEq, stmt.line);
      case_jumps[i] = EmitJump(Op::kJumpIfTrue, stmt.line);
    }
    const size_t no_match = EmitJump(Op::kJump, stmt.line);
    // Bodies, contiguous in source order: fall-through is just falling
    // off the end of one body into the next.
    std::vector<size_t> body_pos(stmt.cases.size(), 0);
    for (size_t i = 0; i < stmt.cases.size(); ++i) {
      body_pos[i] = Here();
      HoistFunctions(stmt.cases[i].body);
      for (const StmtPtr& s : stmt.cases[i].body) {
        if (s->kind == StmtKind::kFunction) continue;
        CompileStmt(*s);
      }
    }
    const size_t end_label = Here();
    for (size_t i = 0; i < stmt.cases.size(); ++i) {
      if (stmt.cases[i].test) PatchJumpTo(case_jumps[i], body_pos[i]);
    }
    PatchJumpTo(no_match, default_index >= 0
                              ? body_pos[static_cast<size_t>(default_index)]
                              : end_label);
    EndScope(stmt.line);
    FinishLoop(stmt.line);  // break targets land after the scope exit
  }

  void EmitHandlerPops(int down_to, int line) {
    for (int i = handler_depth_; i > down_to; --i) {
      EmitOp(Op::kPopHandler, line);
    }
  }

  /// Patch pending break jumps to Here() and pop the loop context.
  void FinishLoop(int line) {
    (void)line;
    for (const size_t j : loops_.back().break_jumps) PatchJump(j);
    loops_.pop_back();
  }

  // -------------------------------------------------------- expressions

  void CompileExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kNumber:
        EmitOp(Op::kConst, e.line);
        EmitU16(NumberConst(e.number));
        return;
      case ExprKind::kString:
        EmitOp(Op::kConst, e.line);
        EmitU16(StringConst(e.string_value));
        return;
      case ExprKind::kBool:
        EmitOp(e.bool_value ? Op::kTrue : Op::kFalse, e.line);
        return;
      case ExprKind::kNull:
        EmitOp(Op::kNull, e.line);
        return;
      case ExprKind::kUndefined:
        EmitOp(Op::kUndefined, e.line);
        return;
      case ExprKind::kIdentifier:
        EmitLoad(e.string_value, e.line);
        return;
      case ExprKind::kArrayLiteral: {
        if (e.elements.size() > 0xffff) {
          Fail("array literal too large");
          return;
        }
        for (const ExprPtr& el : e.elements) CompileExpr(*el);
        EmitOp(Op::kArray, e.line);
        EmitU16(static_cast<uint16_t>(e.elements.size()));
        return;
      }
      case ExprKind::kObjectLiteral: {
        if (e.properties.size() > 0xffff) {
          Fail("object literal too large");
          return;
        }
        for (const ObjectProperty& p : e.properties) {
          EmitOp(Op::kConst, e.line);
          EmitU16(NameConst(p.key, p.key_id));
          CompileExpr(*p.value);
        }
        EmitOp(Op::kObject, e.line);
        EmitU16(static_cast<uint16_t>(e.properties.size()));
        return;
      }
      case ExprKind::kUnary: {
        CompileExpr(*e.a);
        OpCode code = e.op_code;
        if (code == OpCode::kNone) {
          if (e.op == "-") code = OpCode::kNeg;
          else if (e.op == "+") code = OpCode::kPos;
          else if (e.op == "!") code = OpCode::kNot;
          else if (e.op == "typeof") code = OpCode::kTypeof;
        }
        switch (code) {
          case OpCode::kNeg: EmitOp(Op::kNegate, e.line); return;
          case OpCode::kPos: EmitOp(Op::kToNumber, e.line); return;
          case OpCode::kNot: EmitOp(Op::kNot, e.line); return;
          case OpCode::kTypeof: EmitOp(Op::kTypeof, e.line); return;
          default: Fail("unknown unary operator"); return;
        }
      }
      case ExprKind::kUpdate:
        CompileUpdate(e);
        return;
      case ExprKind::kBinary: {
        CompileExpr(*e.a);
        CompileExpr(*e.b);
        const OpCode code = e.op_code != OpCode::kNone
                                ? e.op_code
                                : BinaryFromSpelling(e.op);
        EmitBinary(code, e.line);
        return;
      }
      case ExprKind::kLogical: {
        CompileExpr(*e.a);
        const bool is_and = e.op_code == OpCode::kAndAnd ||
                            (e.op_code == OpCode::kNone && e.op == "&&");
        const size_t j = EmitJump(
            is_and ? Op::kJumpIfFalsePeek : Op::kJumpIfTruePeek, e.line);
        EmitOp(Op::kPop, e.line);
        CompileExpr(*e.b);
        PatchJump(j);
        return;
      }
      case ExprKind::kConditional: {
        CompileExpr(*e.a);
        const size_t jf = EmitJump(Op::kJumpIfFalse, e.line);
        CompileExpr(*e.b);
        const size_t jend = EmitJump(Op::kJump, e.line);
        PatchJump(jf);
        CompileExpr(*e.c);
        PatchJump(jend);
        return;
      }
      case ExprKind::kAssign:
        CompileAssign(e);
        return;
      case ExprKind::kCall:
        CompileCall(e);
        return;
      case ExprKind::kMember:
        CompileExpr(*e.a);
        EmitOp(Op::kGetProp, e.line);
        EmitU16(NameConst(e.string_value, e.name_id));
        return;
      case ExprKind::kIndex:
        CompileExpr(*e.a);
        CompileExpr(*e.b);
        EmitOp(Op::kGetIndex, e.line);
        return;
      case ExprKind::kFunction:
        CompileFunctionBody(e.function_name, e.params, e.body, e.line,
                            /*bind_self=*/true);
        return;
    }
    Fail("unhandled expression");
  }

  void EmitBinary(OpCode code, int line) {
    switch (code) {
      case OpCode::kAdd: EmitOp(Op::kAdd, line); return;
      case OpCode::kSub: EmitOp(Op::kSub, line); return;
      case OpCode::kMul: EmitOp(Op::kMul, line); return;
      case OpCode::kDiv: EmitOp(Op::kDiv, line); return;
      case OpCode::kMod: EmitOp(Op::kMod, line); return;
      case OpCode::kEq: EmitOp(Op::kEq, line); return;
      case OpCode::kNe: EmitOp(Op::kNe, line); return;
      case OpCode::kStrictEq: EmitOp(Op::kStrictEq, line); return;
      case OpCode::kStrictNe: EmitOp(Op::kStrictNe, line); return;
      case OpCode::kLt: EmitOp(Op::kLt, line); return;
      case OpCode::kLe: EmitOp(Op::kLe, line); return;
      case OpCode::kGt: EmitOp(Op::kGt, line); return;
      case OpCode::kGe: EmitOp(Op::kGe, line); return;
      default: Fail("unknown binary operator"); return;
    }
  }

  /// Compound assignment and ++/-- mirror the interpreter's
  /// double evaluation of the target: read via the full expression,
  /// then write via the assignment path (which re-evaluates the base).
  void CompileAssign(const Expr& e) {
    const Expr& target = *e.a;
    CompileExpr(*e.b);  // rhs first — its side effects predate the read
    OpCode compound = e.op_code;
    if (compound == OpCode::kNone && e.op.size() > 1 && e.op != "=" &&
        e.op.back() == '=') {
      compound = BinaryFromSpelling(e.op.substr(0, e.op.size() - 1));
    }
    if (compound != OpCode::kNone) {
      CompileExpr(target);          // old value
      EmitOp(Op::kSwap, e.line);    // [old, rhs]
      EmitBinary(compound, e.line);
    }
    EmitStoreTarget(target, e.line);
  }

  /// Store the value on top of the stack into `target`, leaving the
  /// value on the stack.
  void EmitStoreTarget(const Expr& target, int line) {
    switch (target.kind) {
      case ExprKind::kIdentifier:
        EmitStore(target.string_value, line);
        return;
      case ExprKind::kMember:
        CompileExpr(*target.a);
        EmitOp(Op::kSwap, line);  // [obj, value]
        EmitOp(Op::kSetProp, line);
        EmitU16(NameConst(target.string_value, target.name_id));
        return;
      case ExprKind::kIndex:
        CompileExpr(*target.a);
        CompileExpr(*target.b);
        EmitOp(Op::kRot3, line);  // [obj, index, value]
        EmitOp(Op::kSetIndex, line);
        return;
      default:
        EmitRuntimeError("invalid assignment target", line);
        return;
    }
  }

  void CompileUpdate(const Expr& e) {
    const Expr& target = *e.a;
    CompileExpr(target);
    EmitOp(Op::kToNumber, e.line);
    const bool inc = e.op_code == OpCode::kInc ||
                     (e.op_code == OpCode::kNone && e.op == "++");
    if (e.prefix) {
      EmitOp(inc ? Op::kInc : Op::kDec, e.line);
      EmitStoreTarget(target, e.line);  // result: the new value
    } else {
      EmitOp(Op::kDup, e.line);  // [old, old]
      EmitOp(inc ? Op::kInc : Op::kDec, e.line);
      EmitStoreTarget(target, e.line);  // [old, new]
      EmitOp(Op::kPop, e.line);         // result: the old value
    }
  }

  void CompileCall(const Expr& e) {
    if (e.elements.size() > 255) {
      Fail("too many call arguments");
      return;
    }
    const Expr& callee = *e.a;
    if (callee.kind == ExprKind::kMember) {
      // Fused receiver.method(args): array builtins dispatch natively,
      // everything else falls back to the property path.
      CompileExpr(*callee.a);
      for (const ExprPtr& arg : e.elements) CompileExpr(*arg);
      EmitOp(Op::kInvoke, e.line);
      EmitU16(NameConst(callee.string_value, callee.name_id));
      EmitByte(static_cast<uint8_t>(e.elements.size()), e.line);
      return;
    }
    CompileExpr(callee);
    for (const ExprPtr& arg : e.elements) CompileExpr(*arg);
    EmitOp(Op::kCall, e.line);
    EmitByte(static_cast<uint8_t>(e.elements.size()), e.line);
  }

  void CompileFunctionBody(const std::string& name,
                           const std::vector<std::string>& params,
                           const std::vector<StmtPtr>& body, int line,
                           bool bind_self) {
    FnCompiler child(vm_, this, false, name,
                     static_cast<int>(params.size()), error_);
    child.scope_depth_ = 1;
    // Slot 0 holds the callee. Named function expressions bind it so
    // the function can recurse by name; declarations resolve their own
    // name through the enclosing scope instead (a reassigned binding
    // must be observed, as in the interpreter).
    child.AddLocal(bind_self && !name.empty() ? name : "(fn)", false, true);
    for (const std::string& p : params) child.AddLocal(p, false, true);
    // The body shares the parameter scope: `var a` with a parameter
    // named `a` overwrites the parameter slot.
    child.DeclareBlockLocals(body);
    child.HoistFunctions(body);
    for (const StmtPtr& stmt : body) {
      if (stmt->kind == StmtKind::kFunction) continue;
      child.CompileStmt(*stmt);
    }
    child.EmitOp(Op::kReturnUndef, line);
    const uint16_t index = vm_.AdoptProto(child.TakeProto());
    EmitOp(Op::kClosure, line);
    EmitU16(index);
  }

  Vm& vm_;
  FnCompiler* enclosing_;
  bool is_script_;
  Status* error_;
  std::unique_ptr<FunctionProto> proto_;
  std::vector<LocalVar> locals_;
  std::vector<UpvalInfo> upvals_;
  int scope_depth_ = 0;
  int handler_depth_ = 0;
  std::vector<LoopCtx> loops_;
};

}  // namespace

Result<const FunctionProto*> CompileProgram(const Program& program, Vm& vm) {
  Status error = Status::Ok();
  // Allocate global slots in the interpreter's definition order
  // (hoisted functions first, then top-level vars in statement order)
  // so state snapshots list module globals identically across engines.
  for (const StmtPtr& stmt : program.statements) {
    if (stmt->kind == StmtKind::kFunction) vm.GlobalSlot(stmt->name);
  }
  for (const StmtPtr& stmt : program.statements) {
    if (stmt->kind == StmtKind::kVarDecl) vm.GlobalSlot(stmt->name);
  }
  FnCompiler script(vm, nullptr, /*is_script=*/true, "(script)", 0, &error);
  script.CompileTopLevel(program.statements);
  if (!error.ok()) return error.error();
  const uint16_t index = vm.AdoptProto(script.TakeProto());
  return vm.proto_at(index);
}

}  // namespace vp::script
