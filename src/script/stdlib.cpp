// vpscript standard library: builtin properties/methods on strings and
// arrays, plus the global console / Math / JSON / Object / Array
// namespaces. Kept deliberately close to the JavaScript surface that
// Duktape offers module authors.
#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "json/parse.hpp"
#include "json/write.hpp"
#include "script/convert.hpp"
#include "script/interp.hpp"

namespace vp::script {
namespace {

Value Method(std::string name, HostFunction fn) {
  return Value::MakeHostFunction(std::move(name), std::move(fn));
}

Result<Value> StringProperty(const std::string& s, const std::string& name) {
  if (name == "length") return Value(static_cast<double>(s.size()));
  if (name == "substring" || name == "slice") {
    const bool is_slice = name == "slice";
    return Method(name, [s, is_slice](std::vector<Value>& args,
                                      Interpreter&) -> Result<Value> {
      int64_t n = static_cast<int64_t>(s.size());
      int64_t a = args.size() > 0 ? static_cast<int64_t>(args[0].ToNumber()) : 0;
      int64_t b = args.size() > 1 ? static_cast<int64_t>(args[1].ToNumber()) : n;
      if (is_slice) {  // negative indexes count from the end
        if (a < 0) a += n;
        if (b < 0) b += n;
      }
      a = std::clamp<int64_t>(a, 0, n);
      b = std::clamp<int64_t>(b, 0, n);
      if (!is_slice && a > b) std::swap(a, b);
      if (a >= b) return Value(std::string());
      return Value(s.substr(static_cast<size_t>(a), static_cast<size_t>(b - a)));
    });
  }
  if (name == "indexOf") {
    return Method(name, [s](std::vector<Value>& args,
                            Interpreter&) -> Result<Value> {
      if (args.empty()) return Value(-1.0);
      const size_t pos = s.find(args[0].ToDisplayString());
      return Value(pos == std::string::npos ? -1.0 : static_cast<double>(pos));
    });
  }
  if (name == "split") {
    return Method(name, [s](std::vector<Value>& args,
                            Interpreter&) -> Result<Value> {
      auto arr = std::make_shared<ScriptArray>();
      if (args.empty() || !args[0].is_string() || args[0].AsString().empty()) {
        arr->push_back(Value(s));
        return Value(std::move(arr));
      }
      const std::string& sep = args[0].AsString();
      size_t start = 0;
      while (true) {
        const size_t pos = s.find(sep, start);
        if (pos == std::string::npos) {
          arr->push_back(Value(s.substr(start)));
          break;
        }
        arr->push_back(Value(s.substr(start, pos - start)));
        start = pos + sep.size();
      }
      return Value(std::move(arr));
    });
  }
  if (name == "toUpperCase" || name == "toLowerCase") {
    const bool upper = name == "toUpperCase";
    return Method(name, [s, upper](std::vector<Value>&,
                                   Interpreter&) -> Result<Value> {
      std::string out = s;
      for (char& c : out) {
        c = static_cast<char>(upper ? std::toupper(static_cast<unsigned char>(c))
                                    : std::tolower(static_cast<unsigned char>(c)));
      }
      return Value(std::move(out));
    });
  }
  if (name == "charAt") {
    return Method(name, [s](std::vector<Value>& args,
                            Interpreter&) -> Result<Value> {
      const auto i = args.empty() ? 0 : static_cast<int64_t>(args[0].ToNumber());
      if (i < 0 || static_cast<size_t>(i) >= s.size()) return Value("");
      return Value(std::string(1, s[static_cast<size_t>(i)]));
    });
  }
  if (name == "startsWith" || name == "endsWith") {
    const bool starts = name == "startsWith";
    return Method(name, [s, starts](std::vector<Value>& args,
                                    Interpreter&) -> Result<Value> {
      if (args.empty()) return Value(false);
      const std::string p = args[0].ToDisplayString();
      return Value(starts ? StartsWith(s, p) : EndsWith(s, p));
    });
  }
  if (name == "trim") {
    return Method(name, [s](std::vector<Value>&, Interpreter&) -> Result<Value> {
      return Value(std::string(Trim(s)));
    });
  }
  if (name == "replace") {  // first occurrence, plain-string pattern
    return Method(name, [s](std::vector<Value>& args,
                            Interpreter&) -> Result<Value> {
      if (args.size() < 2) return Value(s);
      const std::string pattern = args[0].ToDisplayString();
      const std::string replacement = args[1].ToDisplayString();
      if (pattern.empty()) return Value(s);
      const size_t pos = s.find(pattern);
      if (pos == std::string::npos) return Value(s);
      std::string out = s;
      out.replace(pos, pattern.size(), replacement);
      return Value(std::move(out));
    });
  }
  if (name == "repeat") {
    return Method(name, [s](std::vector<Value>& args,
                            Interpreter&) -> Result<Value> {
      const auto n = args.empty()
                         ? 0
                         : static_cast<int64_t>(args[0].ToNumber());
      if (n < 0 || static_cast<size_t>(n) * s.size() > 1 << 20) {
        return ScriptError("repeat count out of range");
      }
      std::string out;
      out.reserve(s.size() * static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) out += s;
      return Value(std::move(out));
    });
  }
  if (name == "padStart") {
    return Method(name, [s](std::vector<Value>& args,
                            Interpreter&) -> Result<Value> {
      const auto width = args.empty()
                             ? 0
                             : static_cast<int64_t>(args[0].ToNumber());
      const std::string pad =
          args.size() > 1 ? args[1].ToDisplayString() : " ";
      if (pad.empty() || width <= static_cast<int64_t>(s.size())) {
        return Value(s);
      }
      std::string out;
      while (out.size() + s.size() < static_cast<size_t>(width)) {
        out += pad;
      }
      out.resize(static_cast<size_t>(width) - s.size());
      return Value(out + s);
    });
  }
  return Value::Undefined();
}

// Array builtins are dispatched by enum so the interpreter's
// method-call fast path (CallArrayMethod) can invoke them directly,
// without materializing a bound host-function Value per access.
enum class ArrayMethod {
  kPush, kPop, kShift, kUnshift, kSlice, kJoin, kIndexOf, kConcat,
  kMap, kFilter, kForEach, kReverse, kIncludes, kSort, kReduce,
};

struct ArrayMethodEntry {
  const char* name;
  uint32_t name_id;
  ArrayMethod method;
};

const std::vector<ArrayMethodEntry>& ArrayMethodTable() {
  static const std::vector<ArrayMethodEntry> table = [] {
    auto& interner = Interner::Global();
    std::vector<ArrayMethodEntry> t = {
        {"push", 0, ArrayMethod::kPush},
        {"pop", 0, ArrayMethod::kPop},
        {"shift", 0, ArrayMethod::kShift},
        {"unshift", 0, ArrayMethod::kUnshift},
        {"slice", 0, ArrayMethod::kSlice},
        {"join", 0, ArrayMethod::kJoin},
        {"indexOf", 0, ArrayMethod::kIndexOf},
        {"concat", 0, ArrayMethod::kConcat},
        {"map", 0, ArrayMethod::kMap},
        {"filter", 0, ArrayMethod::kFilter},
        {"forEach", 0, ArrayMethod::kForEach},
        {"reverse", 0, ArrayMethod::kReverse},
        {"includes", 0, ArrayMethod::kIncludes},
        {"sort", 0, ArrayMethod::kSort},
        {"reduce", 0, ArrayMethod::kReduce},
    };
    for (auto& e : t) e.name_id = interner.Intern(e.name);
    return t;
  }();
  return table;
}

Result<Value> InvokeArrayMethod(const std::shared_ptr<ScriptArray>& arr,
                                ArrayMethod method, std::vector<Value>& args,
                                Interpreter& interp) {
  switch (method) {
    case ArrayMethod::kPush: {
      for (Value& v : args) arr->push_back(std::move(v));
      return Value(static_cast<double>(arr->size()));
    }
    case ArrayMethod::kPop: {
      if (arr->empty()) return Value::Undefined();
      Value v = std::move(arr->back());
      arr->pop_back();
      return v;
    }
    case ArrayMethod::kShift: {
      if (arr->empty()) return Value::Undefined();
      Value v = std::move(arr->front());
      arr->erase(arr->begin());
      return v;
    }
    case ArrayMethod::kUnshift: {
      arr->insert(arr->begin(), args.begin(), args.end());
      return Value(static_cast<double>(arr->size()));
    }
    case ArrayMethod::kSlice: {
      int64_t n = static_cast<int64_t>(arr->size());
      int64_t a = args.size() > 0 ? static_cast<int64_t>(args[0].ToNumber()) : 0;
      int64_t b = args.size() > 1 ? static_cast<int64_t>(args[1].ToNumber()) : n;
      if (a < 0) a += n;
      if (b < 0) b += n;
      a = std::clamp<int64_t>(a, 0, n);
      b = std::clamp<int64_t>(b, 0, n);
      auto out = std::make_shared<ScriptArray>();
      for (int64_t i = a; i < b; ++i) {
        out->push_back((*arr)[static_cast<size_t>(i)]);
      }
      return Value(std::move(out));
    }
    case ArrayMethod::kJoin: {
      const std::string sep = args.empty() ? "," : args[0].ToDisplayString();
      std::string out;
      for (size_t i = 0; i < arr->size(); ++i) {
        if (i) out += sep;
        out += (*arr)[i].ToDisplayString();
      }
      return Value(std::move(out));
    }
    case ArrayMethod::kIndexOf: {
      if (args.empty()) return Value(-1.0);
      for (size_t i = 0; i < arr->size(); ++i) {
        if ((*arr)[i].StrictEquals(args[0])) {
          return Value(static_cast<double>(i));
        }
      }
      return Value(-1.0);
    }
    case ArrayMethod::kConcat: {
      auto out = std::make_shared<ScriptArray>(*arr);
      for (const Value& v : args) {
        if (v.is_array()) {
          out->insert(out->end(), v.AsArray()->begin(), v.AsArray()->end());
        } else {
          out->push_back(v);
        }
      }
      return Value(std::move(out));
    }
    case ArrayMethod::kMap:
    case ArrayMethod::kFilter:
    case ArrayMethod::kForEach: {
      if (args.empty() || !args[0].is_function()) {
        return ScriptError("expected a callback function");
      }
      auto out = std::make_shared<ScriptArray>();
      for (size_t i = 0; i < arr->size(); ++i) {
        auto r = interp.Call(args[0],
                             {(*arr)[i], Value(static_cast<double>(i))});
        if (!r.ok()) return r;
        switch (method) {
          case ArrayMethod::kMap: out->push_back(std::move(*r)); break;
          case ArrayMethod::kFilter:
            if (r->Truthy()) out->push_back((*arr)[i]);
            break;
          default: break;
        }
      }
      if (method == ArrayMethod::kForEach) return Value::Undefined();
      return Value(std::move(out));
    }
    case ArrayMethod::kReverse: {
      std::reverse(arr->begin(), arr->end());
      return Value(arr);
    }
    case ArrayMethod::kIncludes: {
      if (args.empty()) return Value(false);
      for (const Value& v : *arr) {
        if (v.StrictEquals(args[0])) return Value(true);
      }
      return Value(false);
    }
    case ArrayMethod::kSort: {
      Status failure = Status::Ok();
      if (!args.empty() && args[0].is_function()) {
        std::stable_sort(arr->begin(), arr->end(),
                         [&](const Value& a, const Value& b) {
                           if (!failure.ok()) return false;
                           auto r = interp.Call(args[0], {a, b});
                           if (!r.ok()) {
                             failure = Status(r.error());
                             return false;
                           }
                           return r->ToNumber() < 0;
                         });
      } else {
        // Default: numeric when everything is a number, else lexical
        // (saner than JS's always-lexicographic default).
        bool all_numbers = true;
        for (const Value& v : *arr) all_numbers &= v.is_number();
        std::stable_sort(arr->begin(), arr->end(),
                         [all_numbers](const Value& a, const Value& b) {
                           if (all_numbers) return a.AsNumber() < b.AsNumber();
                           return a.ToDisplayString() < b.ToDisplayString();
                         });
      }
      if (!failure.ok()) return failure.error();
      return Value(arr);
    }
    case ArrayMethod::kReduce: {
      if (args.empty() || !args[0].is_function()) {
        return ScriptError("expected a callback function");
      }
      size_t start = 0;
      Value acc;
      if (args.size() > 1) {
        acc = args[1];
      } else {
        if (arr->empty()) return ScriptError("reduce of empty array");
        acc = (*arr)[0];
        start = 1;
      }
      for (size_t i = start; i < arr->size(); ++i) {
        auto r = interp.Call(
            args[0], {std::move(acc), (*arr)[i], Value(static_cast<double>(i))});
        if (!r.ok()) return r;
        acc = std::move(*r);
      }
      return acc;
    }
  }
  return Value::Undefined();
}

Result<Value> ArrayProperty(const std::shared_ptr<ScriptArray>& arr,
                            const std::string& name) {
  if (name == "length") return Value(static_cast<double>(arr->size()));
  for (const auto& entry : ArrayMethodTable()) {
    if (name == entry.name) {
      const ArrayMethod method = entry.method;
      return Method(name, [arr, method](std::vector<Value>& args,
                                        Interpreter& interp) -> Result<Value> {
        return InvokeArrayMethod(arr, method, args, interp);
      });
    }
  }
  return Value::Undefined();
}

}  // namespace

bool CallArrayMethod(const std::shared_ptr<ScriptArray>& arr, uint32_t name_id,
                     std::vector<Value>& args, Interpreter& interp,
                     Result<Value>* out) {
  if (name_id == kNoNameId) return false;
  for (const auto& entry : ArrayMethodTable()) {
    if (entry.name_id == name_id) {
      *out = InvokeArrayMethod(arr, entry.method, args, interp);
      return true;
    }
  }
  return false;
}

Result<Value> GetProperty(const Value& object, const std::string& name,
                          Interpreter& interp) {
  (void)interp;
  switch (object.type()) {
    case ValueType::kObject: {
      const Value* v = object.AsObject()->Find(name);
      return v ? *v : Value::Undefined();
    }
    case ValueType::kArray:
      return ArrayProperty(object.AsArray(), name);
    case ValueType::kString:
      return StringProperty(object.AsString(), name);
    default:
      return Value::Undefined();
  }
}

void InstallStdlib(Environment& globals, uint64_t seed) {
  // ---- console ------------------------------------------------------
  auto console = std::make_shared<ScriptObject>();
  console->Set("log", Value::MakeHostFunction(
                          "log", [](std::vector<Value>& args,
                                    Interpreter& interp) -> Result<Value> {
                            std::string line;
                            for (size_t i = 0; i < args.size(); ++i) {
                              if (i) line += ' ';
                              line += args[i].ToDisplayString();
                            }
                            interp.Print(line);
                            return Value::Undefined();
                          }));
  globals.Define("console", Value(console));

  // ---- Math ---------------------------------------------------------
  auto math = std::make_shared<ScriptObject>();
  auto unary = [](const char* name, double (*fn)(double)) {
    return Value::MakeHostFunction(
        name, [fn](std::vector<Value>& args, Interpreter&) -> Result<Value> {
          return Value(fn(args.empty() ? std::nan("") : args[0].ToNumber()));
        });
  };
  math->Set("floor", unary("floor", std::floor));
  math->Set("ceil", unary("ceil", std::ceil));
  math->Set("round", unary("round", std::round));
  math->Set("abs", unary("abs", std::fabs));
  math->Set("sqrt", unary("sqrt", std::sqrt));
  math->Set("exp", unary("exp", std::exp));
  math->Set("log", unary("log", std::log));
  math->Set("sin", unary("sin", std::sin));
  math->Set("cos", unary("cos", std::cos));
  math->Set("trunc", unary("trunc", std::trunc));
  math->Set("log2", unary("log2", std::log2));
  math->Set("sign", Value::MakeHostFunction(
                        "sign", [](std::vector<Value>& args,
                                   Interpreter&) -> Result<Value> {
                          const double v =
                              args.empty() ? std::nan("") : args[0].ToNumber();
                          if (std::isnan(v)) return Value(std::nan(""));
                          return Value(v > 0 ? 1.0 : v < 0 ? -1.0 : 0.0);
                        }));
  math->Set("min", Value::MakeHostFunction(
                       "min", [](std::vector<Value>& args,
                                 Interpreter&) -> Result<Value> {
                         double best = INFINITY;
                         for (const Value& v : args) {
                           best = std::min(best, v.ToNumber());
                         }
                         return Value(best);
                       }));
  math->Set("max", Value::MakeHostFunction(
                       "max", [](std::vector<Value>& args,
                                 Interpreter&) -> Result<Value> {
                         double best = -INFINITY;
                         for (const Value& v : args) {
                           best = std::max(best, v.ToNumber());
                         }
                         return Value(best);
                       }));
  math->Set("pow", Value::MakeHostFunction(
                       "pow", [](std::vector<Value>& args,
                                 Interpreter&) -> Result<Value> {
                         if (args.size() < 2) return Value(std::nan(""));
                         return Value(std::pow(args[0].ToNumber(),
                                               args[1].ToNumber()));
                       }));
  math->Set("atan2", Value::MakeHostFunction(
                         "atan2", [](std::vector<Value>& args,
                                     Interpreter&) -> Result<Value> {
                           if (args.size() < 2) return Value(std::nan(""));
                           return Value(std::atan2(args[0].ToNumber(),
                                                   args[1].ToNumber()));
                         }));
  math->Set("hypot", Value::MakeHostFunction(
                         "hypot", [](std::vector<Value>& args,
                                     Interpreter&) -> Result<Value> {
                           double sum = 0.0;
                           for (const Value& v : args) {
                             sum += v.ToNumber() * v.ToNumber();
                           }
                           return Value(std::sqrt(sum));
                         }));
  // Deterministic Math.random (seeded per context) — simulation runs
  // must be reproducible.
  auto rng = std::make_shared<Rng>(seed);
  math->Set("random", Value::MakeHostFunction(
                          "random", [rng](std::vector<Value>&,
                                          Interpreter&) -> Result<Value> {
                            return Value(rng->NextDouble());
                          }));
  math->Set("PI", Value(M_PI));
  math->Set("E", Value(M_E));
  globals.Define("Math", Value(math));

  // ---- JSON ---------------------------------------------------------
  auto json_ns = std::make_shared<ScriptObject>();
  json_ns->Set("stringify",
               Value::MakeHostFunction(
                   "stringify", [](std::vector<Value>& args,
                                   Interpreter&) -> Result<Value> {
                     if (args.empty()) return Value("undefined");
                     auto j = ScriptToJson(args[0]);
                     if (!j.ok()) return j.error();
                     return Value(json::Write(*j));
                   }));
  json_ns->Set("parse", Value::MakeHostFunction(
                            "parse", [](std::vector<Value>& args,
                                        Interpreter&) -> Result<Value> {
                              if (args.empty() || !args[0].is_string()) {
                                return ScriptError("JSON.parse needs a string");
                              }
                              auto j = json::Parse(args[0].AsString());
                              if (!j.ok()) return j.error();
                              return JsonToScript(*j);
                            }));
  globals.Define("JSON", Value(json_ns));

  // ---- Object / Array helpers ----------------------------------------
  auto object_ns = std::make_shared<ScriptObject>();
  object_ns->Set("keys", Value::MakeHostFunction(
                             "keys", [](std::vector<Value>& args,
                                        Interpreter&) -> Result<Value> {
                               auto out = std::make_shared<ScriptArray>();
                               if (!args.empty() && args[0].is_object()) {
                                 for (const auto& entry :
                                      args[0].AsObject()->items()) {
                                   out->push_back(Value(entry.key));
                                 }
                               }
                               return Value(std::move(out));
                             }));
  globals.Define("Object", Value(object_ns));

  auto array_ns = std::make_shared<ScriptObject>();
  array_ns->Set("isArray", Value::MakeHostFunction(
                               "isArray", [](std::vector<Value>& args,
                                             Interpreter&) -> Result<Value> {
                                 return Value(!args.empty() &&
                                              args[0].is_array());
                               }));
  globals.Define("Array", Value(array_ns));

  // ---- Primitive conversion helpers -----------------------------------
  globals.Define("String", Value::MakeHostFunction(
                               "String", [](std::vector<Value>& args,
                                            Interpreter&) -> Result<Value> {
                                 return Value(args.empty()
                                                  ? ""
                                                  : args[0].ToDisplayString());
                               }));
  globals.Define("Number", Value::MakeHostFunction(
                               "Number", [](std::vector<Value>& args,
                                            Interpreter&) -> Result<Value> {
                                 return Value(args.empty()
                                                  ? 0.0
                                                  : args[0].ToNumber());
                               }));
  globals.Define("parseInt",
                 Value::MakeHostFunction(
                     "parseInt", [](std::vector<Value>& args,
                                    Interpreter&) -> Result<Value> {
                       if (args.empty()) return Value(std::nan(""));
                       return Value(std::trunc(args[0].ToNumber()));
                     }));
  globals.Define("parseFloat",
                 Value::MakeHostFunction(
                     "parseFloat", [](std::vector<Value>& args,
                                      Interpreter&) -> Result<Value> {
                       if (args.empty()) return Value(std::nan(""));
                       return Value(args[0].ToNumber());
                     }));
  globals.Define("isNaN", Value::MakeHostFunction(
                              "isNaN", [](std::vector<Value>& args,
                                          Interpreter&) -> Result<Value> {
                                return Value(args.empty() ||
                                             std::isnan(args[0].ToNumber()));
                              }));
}

}  // namespace vp::script
