#include "script/intern.hpp"

namespace vp::script {

Interner& Interner::Global() {
  static Interner interner;
  return interner;
}

Interner::Interner() : table_(256, 0), mask_(255) {}

uint32_t Interner::Hash(std::string_view s) {
  // FNV-1a. Identifier spellings are short, so byte-at-a-time is fine.
  uint32_t h = 2166136261u;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 16777619u;
  }
  return h;
}

void Interner::Rehash(size_t capacity) {
  table_.assign(capacity, 0);
  mask_ = capacity - 1;
  for (uint32_t id = 0; id < names_.size(); ++id) {
    size_t i = hashes_[id] & mask_;
    while (table_[i] != 0) i = (i + 1) & mask_;
    table_[i] = id + 1;
  }
}

uint32_t Interner::Intern(std::string_view name) {
  const uint32_t h = Hash(name);
  size_t i = h & mask_;
  while (table_[i] != 0) {
    const uint32_t id = table_[i] - 1;
    if (hashes_[id] == h && names_[id] == name) return id;
    i = (i + 1) & mask_;
  }
  const auto id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  hashes_.push_back(h);
  // Keep load factor under 3/4; rehashing moves the insertion slot.
  if ((names_.size() + 1) * 4 >= table_.size() * 3) {
    Rehash(table_.size() * 2);
    i = h & mask_;
    while (table_[i] != 0) i = (i + 1) & mask_;
  }
  table_[i] = id + 1;
  return id;
}

uint32_t Interner::Lookup(std::string_view name) const {
  const uint32_t h = Hash(name);
  size_t i = h & mask_;
  while (table_[i] != 0) {
    const uint32_t id = table_[i] - 1;
    if (hashes_[id] == h && names_[id] == name) return id;
    i = (i + 1) & mask_;
  }
  return kNoNameId;
}

}  // namespace vp::script
