// vpscript resolver pass: parse → **resolve** → execute.
//
// Runs once per Context::Load, between the parser and the interpreter,
// and annotates the AST in place so the per-event hot path stops
// paying for string scans and per-scope heap allocations:
//
//   * identifiers are interned and resolved to either a flat frame
//     slot (locals of slot-mode functions) or an interned-id
//     environment reference (globals / captured scopes);
//   * functions whose locals are provably never captured by a closure
//     are marked **slot mode**: the interpreter executes them against
//     a pooled flat frame — no `make_shared<Environment>` per call,
//     block or loop iteration. Functions that create closures (or
//     named function expressions that reference their own name) keep
//     today's Environment-chain semantics;
//   * member accesses and object-literal keys are pre-interned so
//     `ScriptObject` lookups compare integer ids;
//   * constant subexpressions (`2 * 3 + 1`, `"a" + "b"`, `!false`,
//     folded conditionals) are evaluated at resolve time.
//
// Unresolved programs still execute correctly (the interpreter's
// dynamic fallback), which is the escape hatch `ContextOptions.resolve
// = false` uses; checkpoint/restore, host interop and `Context`
// globals always stay Environment-backed.
#pragma once

#include "script/ast.hpp"

namespace vp::script {

/// Annotate `program` in place. Idempotent in effect but meant to be
/// called exactly once, right after parsing.
void ResolveProgram(Program& program);

}  // namespace vp::script
