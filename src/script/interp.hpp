// vpscript tree-walking interpreter.
//
// Executes a parsed (and normally resolver-annotated, see
// resolver.hpp) Program. Scopes come in two flavors, carried by
// ScopeCtx:
//   * environment-backed — the shared_ptr<Environment> chain; used for
//     globals, closures, the unresolved fallback path, and any
//     function whose locals may be captured;
//   * slot frames — a pooled flat vector<Value> for functions the
//     resolver proved capture-free; identifier access is an array
//     index and scope entry/exit allocates nothing.
// Guards:
//   * step budget   — a runaway `while(true)` in module code cannot
//                     stall the whole device runtime;
//   * call depth    — unbounded recursion errors out cleanly.
// Both limits mirror what a FaaS runtime enforces on untrusted
// functions.
#pragma once

#include <memory>
#include <string>

#include "common/error.hpp"
#include "script/ast.hpp"
#include "script/value.hpp"

namespace vp::script {

struct InterpreterLimits {
  /// Maximum AST-node evaluations per entry (Run/Call).
  uint64_t max_steps = 5'000'000;
  int max_call_depth = 128;
};

class Interpreter {
 public:
  explicit Interpreter(std::shared_ptr<Environment> globals,
                       InterpreterLimits limits = {});

  /// Execute a program's top-level statements. Function declarations
  /// are hoisted into the global scope first.
  Result<Value> RunProgram(const std::shared_ptr<Program>& program);

  /// Call a function value with arguments.
  Result<Value> Call(const Value& fn, std::vector<Value> args);

  const std::shared_ptr<Environment>& globals() const { return globals_; }

  /// Where console.log output goes (default: VP_INFO log).
  void set_print_handler(std::function<void(const std::string&)> handler) {
    print_ = std::move(handler);
  }
  void Print(const std::string& line);

  uint64_t steps_used() const { return steps_used_; }
  /// Reset the per-entry budget (Context does this before each event).
  void ResetBudget() { steps_used_ = 0; }

  /// Pooled-frame activations so far — observability: >0 proves the
  /// resolver's slot path is actually taken.
  uint64_t slot_frames_used() const { return slot_frames_used_; }

 private:
  enum class Flow { kNormal, kReturn, kBreak, kContinue };
  struct ExecResult {
    Flow flow = Flow::kNormal;
    Value value;
  };

  /// The execution scope: `frame` is non-null inside a slot-mode
  /// function (locals live there); `env` is then the function's
  /// closure (globals for top-level functions) and serves kEnv refs.
  struct ScopeCtx {
    const std::shared_ptr<Environment>& env;
    std::vector<Value>* frame;
  };

  Result<ExecResult> ExecBlock(const std::vector<StmtPtr>& stmts,
                               const ScopeCtx& ctx);
  Result<ExecResult> ExecStmt(const Stmt& stmt, const ScopeCtx& ctx);
  Result<Value> Eval(const Expr& expr, const ScopeCtx& ctx);
  Result<Value> EvalCall(const Expr& expr, const ScopeCtx& ctx);
  Result<Value> Assign(const Expr& target, Value value, const ScopeCtx& ctx,
                       int line);

  /// kEnv identifier lookup with a per-expression inline cache.
  Value* LookupEnv(const Expr& expr, Environment& env) const;

  /// Pointer to the live storage of an addressable, side-effect-free
  /// expression (slot / environment identifier), or nullptr — the
  /// caller then falls back to Eval, which also produces the proper
  /// "'x' is not defined" error. Callers must consume the pointer
  /// before running any further script code (it aliases a binding that
  /// an assignment could overwrite); this lets `obj.prop`, `arr[i]`
  /// and `arr.method(...)` read their base operand without copying a
  /// Value (each copy is an atomic shared_ptr refcount round-trip).
  const Value* EvalRef(const Expr& expr, const ScopeCtx& ctx) const;

  /// Step accounting, inlined: one increment + compare per AST node on
  /// the happy path, budget-exhausted error construction out of line.
  Status Charge(int line) {
    if (++steps_used_ <= limits_.max_steps) return Status::Ok();
    return BudgetExhausted(line);
  }
  Status BudgetExhausted(int line) const;
  Error Raise(int line, const std::string& what) const;

  Value MakeClosure(const Expr& fn_expr,
                    const std::shared_ptr<Environment>& env);

  std::vector<Value> AcquireFrame(size_t size);
  void ReleaseFrame(std::vector<Value> frame);

  /// Argument-vector recycling for call sites that keep ownership
  /// (builtin array methods). Vectors moved into Call() leave the pool.
  std::vector<Value> AcquireArgs(size_t capacity) {
    if (args_pool_.empty()) {
      std::vector<Value> args;
      args.reserve(capacity);
      return args;
    }
    std::vector<Value> args = std::move(args_pool_.back());
    args_pool_.pop_back();
    args.reserve(capacity);
    return args;
  }
  void ReleaseArgs(std::vector<Value> args) {
    args.clear();
    if (args_pool_.size() < 16) args_pool_.push_back(std::move(args));
  }

  std::shared_ptr<Environment> globals_;
  InterpreterLimits limits_;
  uint64_t steps_used_ = 0;
  int call_depth_ = 0;
  uint64_t slot_frames_used_ = 0;
  std::shared_ptr<Program> current_program_;  // keeps closures alive
  std::vector<std::vector<Value>> frame_pool_;
  std::vector<std::vector<Value>> args_pool_;
  std::function<void(const std::string&)> print_;
};

/// Binary operator semantics, shared by the interpreter's hot path and
/// the resolver's constant folder (so folded results match run-time
/// results bit for bit). Errors on OpCode::kNone / non-binary codes.
Result<Value> EvalBinaryOp(OpCode op, const Value& a, const Value& b);

/// Property access on any value (string/array builtins, object
/// members). Returns undefined for unknown members, an error for
/// property access on null/undefined.
Result<Value> GetProperty(const Value& object, const std::string& name,
                          Interpreter& interp);

/// Direct dispatch for `array.method(args)` call sites with a
/// resolver-interned method id — skips materializing a bound
/// host-function Value per call. Returns false when `name_id` is not
/// an array builtin (caller falls back to the property path).
bool CallArrayMethod(const std::shared_ptr<ScriptArray>& arr, uint32_t name_id,
                     std::vector<Value>& args, Interpreter& interp,
                     Result<Value>* out);

/// Install the standard library (console, Math, JSON, Object, Array,
/// String/Number helpers) into a global environment. `seed` drives
/// Math.random determinism.
void InstallStdlib(Environment& globals, uint64_t seed = 1234);

}  // namespace vp::script
