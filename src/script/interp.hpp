// vpscript tree-walking interpreter.
//
// Executes a parsed Program against an Environment chain. Guards:
//   * step budget   — a runaway `while(true)` in module code cannot
//                     stall the whole device runtime;
//   * call depth    — unbounded recursion errors out cleanly.
// Both limits mirror what a FaaS runtime enforces on untrusted
// functions.
#pragma once

#include <memory>
#include <string>

#include "common/error.hpp"
#include "script/ast.hpp"
#include "script/value.hpp"

namespace vp::script {

struct InterpreterLimits {
  /// Maximum AST-node evaluations per entry (Run/Call).
  uint64_t max_steps = 5'000'000;
  int max_call_depth = 128;
};

class Interpreter {
 public:
  explicit Interpreter(std::shared_ptr<Environment> globals,
                       InterpreterLimits limits = {});

  /// Execute a program's top-level statements. Function declarations
  /// are hoisted into the global scope first.
  Result<Value> RunProgram(const std::shared_ptr<Program>& program);

  /// Call a function value with arguments.
  Result<Value> Call(const Value& fn, std::vector<Value> args);

  const std::shared_ptr<Environment>& globals() const { return globals_; }

  /// Where console.log output goes (default: VP_INFO log).
  void set_print_handler(std::function<void(const std::string&)> handler) {
    print_ = std::move(handler);
  }
  void Print(const std::string& line);

  uint64_t steps_used() const { return steps_used_; }
  /// Reset the per-entry budget (Context does this before each event).
  void ResetBudget() { steps_used_ = 0; }

 private:
  enum class Flow { kNormal, kReturn, kBreak, kContinue };
  struct ExecResult {
    Flow flow = Flow::kNormal;
    Value value;
  };

  Result<ExecResult> ExecBlock(const std::vector<StmtPtr>& stmts,
                               const std::shared_ptr<Environment>& env);
  Result<ExecResult> ExecStmt(const Stmt& stmt,
                              const std::shared_ptr<Environment>& env);
  Result<Value> Eval(const Expr& expr,
                     const std::shared_ptr<Environment>& env);
  Result<Value> EvalCall(const Expr& expr,
                         const std::shared_ptr<Environment>& env);
  Result<Value> EvalBinary(const std::string& op, const Value& a,
                           const Value& b, int line);
  Result<Value> Assign(const Expr& target, Value value,
                       const std::shared_ptr<Environment>& env, int line);

  Status Charge(int line);
  Error Raise(int line, const std::string& what) const;

  Value MakeClosure(const Expr& fn_expr,
                    const std::shared_ptr<Environment>& env);

  std::shared_ptr<Environment> globals_;
  InterpreterLimits limits_;
  uint64_t steps_used_ = 0;
  int call_depth_ = 0;
  std::shared_ptr<Program> current_program_;  // keeps closures alive
  std::function<void(const std::string&)> print_;
};

/// Property access on any value (string/array builtins, object
/// members). Returns undefined for unknown members, an error for
/// property access on null/undefined.
Result<Value> GetProperty(const Value& object, const std::string& name,
                          Interpreter& interp);

/// Install the standard library (console, Math, JSON, Object, Array,
/// String/Number helpers) into a global environment. `seed` drives
/// Math.random determinism.
void InstallStdlib(Environment& globals, uint64_t seed = 1234);

}  // namespace vp::script
