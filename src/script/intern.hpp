// Name interning for the vpscript engine.
//
// The resolver pass and the runtime agree on a process-wide mapping
// from identifier / property-key spellings to dense uint32 ids, so the
// hot paths (variable lookup, object member access) compare integers
// instead of strings. The table is append-only and bounded: only names
// that appear in program text or are registered by the host (stdlib,
// host functions, snapshot keys) are interned — keys fabricated at
// runtime (`obj[dynamic] = …`) stay plain strings, so a long-running
// module cannot grow the table without bound.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace vp::script {

/// Sentinel: "not interned". Entries carrying this id fall back to
/// string comparison.
inline constexpr uint32_t kNoNameId = 0xFFFFFFFFu;

class Interner {
 public:
  /// The process-wide table shared by every script context. Script
  /// execution is single-threaded (one simulator loop), like the rest
  /// of the engine.
  static Interner& Global();

  /// Insert-or-get. Stable ids; the same spelling always maps to the
  /// same id.
  uint32_t Intern(std::string_view name);

  /// Get without inserting; kNoNameId when the name was never interned
  /// (and therefore cannot be bound anywhere that uses ids).
  uint32_t Lookup(std::string_view name) const;

  const std::string& NameOf(uint32_t id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

 private:
  Interner();

  static uint32_t Hash(std::string_view s);
  void Rehash(size_t capacity);

  // deque: stable string storage, so NameOf references survive growth.
  std::deque<std::string> names_;
  // Interning sits on the resolve and context-construction paths, so
  // the index is a flat open-addressing table (linear probing,
  // power-of-two capacity) instead of std::unordered_map — one cache
  // line per probe, no per-node allocation. Entries store id + 1 so 0
  // can mean "empty"; hashes_ memoizes each name's hash for cheap
  // probe rejection and rehashing.
  std::vector<uint32_t> table_;
  std::vector<uint32_t> hashes_;
  size_t mask_ = 0;
};

}  // namespace vp::script
