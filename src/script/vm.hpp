// vpscript bytecode virtual machine.
//
// The VM executes compact bytecode produced by compiler.hpp from the
// resolved AST. It replaces the boxed, shared_ptr-based Value on its
// hot path with a NaN-boxed 64-bit representation: doubles are stored
// verbatim, singletons (undefined/null/true/false) live in the quiet
// NaN space, and heap objects (strings, arrays, objects, closures,
// upvalue cells, host-function wrappers) are 48-bit pointers into a
// VM-owned heap reclaimed by a mark-and-sweep tracing collector.
//
// Why: the tree-walking interpreter's closures hold
// shared_ptr<Environment> while environments hold the Values that own
// those closures — a reference cycle that reference counting can never
// reclaim. The tracing GC eliminates that class of leak by
// construction: anything unreachable from the VM roots (value stack,
// call frames, globals, open upvalues, host-escaped handles) is
// reclaimed, cycles included.
//
// Determinism: collection is driven purely by allocation pressure
// (bytes allocated since the last cycle), checked only at instruction
// boundaries. Wall-clock time never influences when a collection runs,
// so a GC pause cannot perturb the discrete-event simulator.
//
// Host interop: values crossing the host boundary (host functions,
// GetGlobal, snapshots) are deep-converted to/from the boxed Value.
// Every host function in the runtime (call_service, Math.*, JSON.*,
// console.log, …) only reads its arguments and returns plain data, so
// deep conversion is semantically transparent.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "json/value.hpp"
#include "script/interp.hpp"
#include "script/value.hpp"

namespace vp::script {

class Vm;

// ------------------------------------------------------------ values

/// NaN-boxed value: a double, a tagged singleton, or a heap pointer.
using RawVal = uint64_t;

inline constexpr RawVal kQnan = 0x7ffc000000000000ull;
inline constexpr RawVal kSignBit = 0x8000000000000000ull;
inline constexpr RawVal kTagUndefined = kQnan | 1;
inline constexpr RawVal kTagNull = kQnan | 2;
inline constexpr RawVal kTagFalse = kQnan | 3;
inline constexpr RawVal kTagTrue = kQnan | 4;
/// Global-table slot sentinel: "never defined". Not script-visible.
inline constexpr RawVal kTagEmpty = kQnan | 5;

enum class GcType : uint8_t {
  kString, kArray, kObject, kClosure, kUpvalue, kHostFn, kBoundMethod,
};

struct GcObj {
  GcType type;
  bool marked = false;
  GcObj* next = nullptr;
  explicit GcObj(GcType t) : type(t) {}
};

struct VpValue {
  RawVal bits;

  VpValue() : bits(kTagUndefined) {}
  explicit VpValue(RawVal raw) : bits(raw) {}

  static VpValue Undefined() { return VpValue(kTagUndefined); }
  static VpValue Null() { return VpValue(kTagNull); }
  static VpValue Empty() { return VpValue(kTagEmpty); }
  static VpValue Boolean(bool b) { return VpValue(b ? kTagTrue : kTagFalse); }
  static VpValue Number(double d) {
    RawVal raw;
    std::memcpy(&raw, &d, sizeof(raw));
    return VpValue(raw);
  }
  static VpValue Heap(GcObj* obj) {
    return VpValue(kSignBit | kQnan |
                   static_cast<RawVal>(reinterpret_cast<uintptr_t>(obj)));
  }

  bool is_number() const { return (bits & kQnan) != kQnan; }
  bool is_undefined() const { return bits == kTagUndefined; }
  bool is_null() const { return bits == kTagNull; }
  bool is_nullish() const { return is_undefined() || is_null(); }
  bool is_bool() const { return bits == kTagTrue || bits == kTagFalse; }
  bool is_empty() const { return bits == kTagEmpty; }
  bool is_heap() const {
    return (bits & (kSignBit | kQnan)) == (kSignBit | kQnan);
  }

  double AsNumber() const {
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  }
  bool AsBool() const { return bits == kTagTrue; }
  GcObj* AsHeap() const {
    return reinterpret_cast<GcObj*>(
        static_cast<uintptr_t>(bits & ~(kSignBit | kQnan)));
  }
  bool IsHeapType(GcType t) const { return is_heap() && AsHeap()->type == t; }
};

struct GcString : GcObj {
  std::string text;
  /// Interned id when this string is used as a property key constant
  /// (kNoNameId otherwise) — lets property lookups compare integers.
  uint32_t name_id = kNoNameId;
  explicit GcString(std::string s) : GcObj(GcType::kString),
                                     text(std::move(s)) {}
};

struct GcArray : GcObj {
  std::vector<VpValue> items;
  GcArray() : GcObj(GcType::kArray) {}
};

struct GcObject : GcObj {
  struct Entry {
    uint32_t key_id;
    std::string key;
    VpValue value;
  };
  std::vector<Entry> items;
  GcObject() : GcObj(GcType::kObject) {}

  VpValue* Find(const std::string& key);
  VpValue* FindInterned(uint32_t key_id, const std::string& key);
  void Set(const std::string& key, VpValue v);
  void SetInterned(uint32_t key_id, const std::string& key, VpValue v);
};

struct GcUpvalue : GcObj {
  /// Points into the VM value stack while open, at `closed` after.
  VpValue* location;
  VpValue closed;
  GcUpvalue* next_open = nullptr;  // intrusive open-upvalue list
  explicit GcUpvalue(VpValue* slot) : GcObj(GcType::kUpvalue),
                                      location(slot) {}
};

/// Upvalue capture descriptor, resolved at compile time.
struct UpvalDesc {
  bool from_local;  // capture enclosing local vs. enclosing upvalue
  uint16_t index;
};

/// A compiled function body — bytecode, constants, line table. Owned
/// by the Vm (protos_), referenced by closures.
struct FunctionProto {
  std::string name;
  int arity = 0;
  /// Maximum value-stack depth any execution of this body can reach,
  /// relative to the frame base (slot 0 = callee), computed by the
  /// compiler's abstract interpretation of the bytecode. PushFrame
  /// checks base + max_stack against the stack capacity once per call,
  /// so no push inside the frame needs a bounds check — including
  /// arbitrarily wide array/object literals, which can exceed any
  /// fixed per-call headroom.
  uint32_t max_stack = 0;
  std::vector<uint8_t> code;
  /// Source line per code byte (same length as `code`) — exact
  /// "script:%d:" attribution for every instruction.
  std::vector<int32_t> lines;
  std::vector<VpValue> constants;
  std::vector<UpvalDesc> upvalues;
};

struct GcClosure : GcObj {
  const FunctionProto* proto;
  std::vector<GcUpvalue*> upvalues;
  explicit GcClosure(const FunctionProto* p) : GcObj(GcType::kClosure),
                                               proto(p) {}
};

/// A boxed host function (or a boxed tree-walker closure) exposed to
/// VM code. Calls deep-convert arguments to boxed Values and the
/// result back.
struct GcHostFn : GcObj {
  std::shared_ptr<HostFunctionValue> host;
  explicit GcHostFn(std::shared_ptr<HostFunctionValue> h)
      : GcObj(GcType::kHostFn), host(std::move(h)) {}
};

/// `array.method` read without being called: a method bound to its
/// receiver, so a later call still mutates the original array.
struct GcBoundMethod : GcObj {
  VpValue receiver;
  uint8_t method;  // ArrayMethod ordinal (vm.cpp)
  std::string name;
  GcBoundMethod() : GcObj(GcType::kBoundMethod) {}
};

// ------------------------------------------------------------- opcodes

enum class Op : uint8_t {
  kConst,          // u16 constant index
  kUndefined, kNull, kTrue, kFalse,
  kUndefN,         // u16: push n undefined values (block-entry slots)
  kPop,
  kPopN,           // u16
  kDup,            // duplicate top
  kSwap,           // a b -> b a
  kRot3,           // a b c -> b c a
  kGetLocal,       // u16 frame slot
  kSetLocal,       // u16 (peeks)
  kGetUpvalue,     // u16
  kSetUpvalue,     // u16 (peeks)
  kGetGlobal,      // u16 global slot
  kSetGlobal,      // u16 (peeks)
  kDefineGlobal,   // u16 (pops)
  kDefineGlobalConst,  // u16 (pops)
  kArray,          // u16 element count (pops elements)
  kObject,         // u16 property count (pops key/value pairs)
  kGetProp,        // u16 name constant
  kSetProp,        // u16 name constant: obj value -> value
  kGetIndex,       // obj index -> value
  kSetIndex,       // obj index value -> value
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kStrictEq, kStrictNe,
  kLt, kLe, kGt, kGe,
  kNegate, kToNumber, kNot, kTypeof,
  kInc, kDec,      // number on top -> number ± 1
  kJump,           // u16 forward offset
  kJumpIfFalse,    // u16 (pops)
  kJumpIfTrue,     // u16 (pops)
  kJumpIfFalsePeek,  // u16 (peeks — logical &&)
  kJumpIfTruePeek,   // u16 (peeks — logical ||)
  kLoop,           // u16 backward offset
  kCall,           // u8 argc
  kInvoke,         // u16 name constant, u8 argc (obj.method(...) fused)
  kClosure,        // u16 proto index (upvalue descs live in the proto)
  kCloseScope,     // u16 n: close upvalues into the top n slots, pop n
  kReturn,         // pops result
  kReturnUndef,
  kPushHandler,    // u16 catch target offset (forward)
  kPopHandler,
  kThrow,          // pops thrown value
  kForInInit,      // pops subject, pushes keys array + index 0
  kForInNext,      // u16 keys slot, u16 exit offset: push next key or jump
  kRuntimeError,   // u16 message constant: raise ScriptError here
};

// ------------------------------------------------------------------ Vm

/// Execution engine + heap. One Vm per Context (the unit of isolation,
/// mirroring the paper's one-Duktape-context-per-module design).
class Vm {
 public:
  explicit Vm(InterpreterLimits limits, Interpreter* fallback_interp);
  ~Vm();

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  // -- program loading -------------------------------------------------
  /// Take ownership of a compiled function body; returns its index
  /// (the kClosure operand).
  uint16_t AdoptProto(std::unique_ptr<FunctionProto> proto);
  const FunctionProto* proto_at(uint16_t index) const {
    return protos_[index].get();
  }
  size_t proto_count() const { return protos_.size(); }

  /// Global-slot bookkeeping (compile time): index for `name`,
  /// allocating an empty slot on first use.
  uint16_t GlobalSlot(const std::string& name);

  /// Import a boxed value as a defined global (baseline import from the
  /// Environment at Load, or a post-Load DefineGlobal).
  void ImportGlobal(const std::string& name, const Value& v, bool baseline);

  /// Run the top-level proto. Call once per Load.
  Status RunTopLevel(const FunctionProto* top);

  // -- host entry points ----------------------------------------------
  bool HasGlobal(const std::string& name) const;
  bool GlobalIsFunction(const std::string& name) const;
  Value GetGlobalBoxed(const std::string& name);
  Result<Value> CallGlobal(const std::string& name, std::vector<Value> args);

  json::Value SnapshotState();
  void RestoreState(const json::Value& snapshot);

  void ResetBudget() { steps_used_ = 0; }

  // -- GC --------------------------------------------------------------
  /// Mark-and-sweep collection. Safe whenever the VM is at an
  /// instruction boundary (including "not running at all").
  void CollectGarbage();
  size_t live_objects() const { return live_objects_; }
  size_t bytes_allocated() const { return bytes_allocated_; }
  uint64_t gc_cycles() const { return gc_cycles_; }

  // -- heap ------------------------------------------------------------
  GcString* NewString(std::string s);
  GcArray* NewArray();
  GcObject* NewObject();
  GcClosure* NewClosure(const FunctionProto* proto);
  GcUpvalue* NewUpvalue(VpValue* slot);
  GcHostFn* NewHostFn(std::shared_ptr<HostFunctionValue> host);
  GcBoundMethod* NewBoundMethod(VpValue receiver, uint8_t method,
                                std::string name);

  // -- value helpers (exact mirrors of the boxed Value semantics) ------
  static bool Truthy(VpValue v);
  static double ToNumber(VpValue v);
  std::string ToDisplayString(VpValue v) const;
  static bool StrictEquals(VpValue a, VpValue b);
  static bool LooseEquals(VpValue a, VpValue b);
  static const char* TypeName(VpValue v);

  /// Deep conversions across the host boundary (cycle-safe).
  VpValue BoxedToVm(const Value& v);
  Value VmToBoxed(VpValue v);

  Interpreter* fallback_interpreter() const { return interp_; }

 private:
  struct Frame {
    GcClosure* closure;
    const uint8_t* ip;
    size_t base;  // stack index of slot 0 (the callee)
  };
  struct Handler {
    size_t frame_index;
    size_t sp;
    size_t ip_offset;  // catch target within the frame's proto
  };
  struct GlobalSlotData {
    uint32_t name_id;
    std::string name;
    VpValue value = VpValue::Empty();
    bool is_const = false;
    bool baseline = false;
  };

  /// Dispatch loop: runs until the frame stack shrinks back to
  /// `base_frames`. Reentrant (native array methods calling script
  /// callbacks re-enter here).
  Status Run(size_t base_frames);

  /// Push callee+args and execute to completion (reentrant).
  Result<VpValue> CallValue(VpValue callee, const VpValue* args, int argc,
                            int line);
  /// Set up a frame for a closure call; stack already holds
  /// callee+args starting at `base`.
  Status PushFrame(VpValue callee, int argc, int line);

  Status Raise(int line, const std::string& what) const {
    return Status(StatusCode::kScriptError,
                  FormatScriptError(line, what));
  }
  static std::string FormatScriptError(int line, const std::string& what);
  /// Call-site annotation: prefix "script:%d:" unless already present,
  /// preserving the status code (host failures stay catchable as-is).
  static Status AnnotateCallError(Status s, int line);

  int CurrentLine() const;
  Status BudgetExhausted(int line) const;

  GcUpvalue* CaptureUpvalue(VpValue* slot);
  void CloseUpvalues(VpValue* from);

  Status InvokeArrayMethod(GcArray* arr, uint8_t method, int argc, int line,
                           VpValue* out);
  Status CallHostFn(GcHostFn* host, const VpValue* args, int argc, int line,
                    VpValue* out);
  /// Call a non-closure callee (host fn / bound method / error case);
  /// stack holds [callee, args...], replaced by the result on success.
  Status CallNonClosure(VpValue callee, int argc, int line);
  Result<VpValue> GetPropertyVm(VpValue obj, const GcString* name, int line);

  VpValue ImportValueRec(const Value& v);
  Value ExportValueRec(VpValue v,
                       std::unordered_map<const GcObj*, Value>& memo);

  void Push(VpValue v) { stack_[sp_++] = v; }
  VpValue Pop() { return stack_[--sp_]; }
  VpValue Peek(size_t depth) const { return stack_[sp_ - 1 - depth]; }

  void TrackAllocation(GcObj* obj, size_t bytes);
  void MarkValue(VpValue v);
  void MarkObject(GcObj* obj);
  void TraceReferences();
  void Sweep();

  InterpreterLimits limits_;
  Interpreter* interp_;  // print handler + boxed-closure fallback calls

  // Execution state. The stack has fixed capacity so upvalue pointers
  // into it stay stable.
  std::vector<VpValue> stack_;
  size_t sp_ = 0;
  std::vector<Frame> frames_;
  std::vector<Handler> handlers_;
  GcUpvalue* open_upvalues_ = nullptr;
  uint64_t steps_used_ = 0;

  // Program.
  std::vector<std::unique_ptr<FunctionProto>> protos_;
  std::vector<GlobalSlotData> globals_;
  std::unordered_map<uint32_t, uint16_t> global_index_;  // name_id -> slot

  // Heap.
  GcObj* heap_head_ = nullptr;
  size_t live_objects_ = 0;
  size_t bytes_allocated_ = 0;
  size_t next_gc_ = 256 * 1024;
  uint64_t gc_cycles_ = 0;
  std::vector<GcObj*> gray_;
  /// Extra roots for native-method temporaries that live across a
  /// reentrant script callback (map/filter accumulators, …).
  std::vector<VpValue> temp_roots_;
  /// Import memo: boxed heap identity -> converted VM object within
  /// one host-boundary conversion, so shared/cyclic boxed structure
  /// keeps its shape. Cleared per conversion; no GC can run while a
  /// conversion is in flight (collection only happens at instruction
  /// boundaries), so the memo is not a root.
  std::unordered_map<const void*, VpValue> import_memo_;
  /// VM closures handed to the host (VmToBoxed wrappers) stay rooted
  /// here for the life of the Vm — the host-side shared_ptr is
  /// invisible to the collector.
  std::vector<VpValue> escaped_;
  /// Frame count corresponding to interpreter call depth 0 for the
  /// current entry (1 for RunTopLevel — the script frame is not a
  /// "call" — 0 for CallGlobal).
  size_t depth_base_ = 0;

  friend class TempRootScope;
};

/// RAII root pin for values held in C++ locals across a reentrant
/// script call (GC safepoints run inside the callee).
class TempRootScope {
 public:
  explicit TempRootScope(Vm& vm) : vm_(vm), base_(vm.temp_roots_.size()) {}
  ~TempRootScope() { vm_.temp_roots_.resize(base_); }
  void Pin(VpValue v) { vm_.temp_roots_.push_back(v); }

 private:
  Vm& vm_;
  size_t base_;
};

}  // namespace vp::script
