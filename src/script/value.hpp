// vpscript runtime values.
//
// Values have JavaScript-like semantics: numbers are doubles, objects
// and arrays are reference types (shared), functions are first-class
// closures. Host functions let the VideoPipe runtime expose the
// paper's Table-1 API (call_service / call_module / …) to module code.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/error.hpp"
#include "script/intern.hpp"

namespace vp::script {

class Value;
class Interpreter;
struct Program;
struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

class ScriptObject;

using ScriptArray = std::vector<Value>;

/// A script-defined function (closure).
struct ScriptFunction {
  std::string name;  // may be empty
  std::vector<std::string> params;
  /// Non-owning view of the body; `owner` keeps the AST alive.
  const std::vector<StmtPtr>* body = nullptr;
  std::shared_ptr<Program> owner;
  std::shared_ptr<class Environment> closure;
  /// Resolver verdict (copied from the AST node): slot-mode functions
  /// execute against a pooled flat frame of `frame_size` values instead
  /// of a heap Environment chain. Only functions whose locals are
  /// provably never captured by a closure qualify.
  bool slot_mode = false;
  uint16_t frame_size = 0;
  /// Frame slot for each positional parameter (slot mode only).
  const std::vector<uint16_t>* param_slots = nullptr;
};

/// A C++ function exposed to scripts.
using HostFunction =
    std::function<Result<Value>(std::vector<Value>& args, Interpreter& interp)>;

struct HostFunctionValue {
  std::string name;
  HostFunction fn;
};

enum class ValueType {
  kUndefined, kNull, kBool, kNumber, kString, kObject, kArray,
  kFunction, kHostFunction,
};

const char* ValueTypeName(ValueType t);

/// Number formatting shared by every engine ("NaN", "Infinity",
/// integers up to 1e15 without exponent, %g otherwise) — display
/// output must be byte-identical across the interpreter and the VM.
std::string NumberToString(double d);

class Value {
 public:
  Value() : data_(std::monostate{}) {}  // undefined
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(std::shared_ptr<ScriptObject> o) : data_(std::move(o)) {}
  Value(std::shared_ptr<ScriptArray> a) : data_(std::move(a)) {}
  Value(std::shared_ptr<ScriptFunction> f) : data_(std::move(f)) {}
  Value(std::shared_ptr<HostFunctionValue> h) : data_(std::move(h)) {}

  static Value Undefined() { return Value(); }
  static Value MakeObject() {
    return Value(std::make_shared<ScriptObject>());
  }
  static Value MakeArray() { return Value(std::make_shared<ScriptArray>()); }
  static Value MakeHostFunction(std::string name, HostFunction fn);

  /// The variant's alternatives are declared in ValueType order, so
  /// the tag maps straight through — keep both lists in sync.
  ValueType type() const { return static_cast<ValueType>(data_.index()); }
  bool is_undefined() const { return type() == ValueType::kUndefined; }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_nullish() const { return is_undefined() || is_null(); }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_number() const { return type() == ValueType::kNumber; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_object() const { return type() == ValueType::kObject; }
  bool is_array() const { return type() == ValueType::kArray; }
  bool is_function() const {
    return type() == ValueType::kFunction ||
           type() == ValueType::kHostFunction;
  }

  bool AsBool() const { return std::get<bool>(data_); }
  double AsNumber() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  const std::shared_ptr<ScriptObject>& AsObject() const {
    return std::get<std::shared_ptr<ScriptObject>>(data_);
  }
  const std::shared_ptr<ScriptArray>& AsArray() const {
    return std::get<std::shared_ptr<ScriptArray>>(data_);
  }
  const std::shared_ptr<ScriptFunction>& AsFunction() const {
    return std::get<std::shared_ptr<ScriptFunction>>(data_);
  }
  const std::shared_ptr<HostFunctionValue>& AsHostFunction() const {
    return std::get<std::shared_ptr<HostFunctionValue>>(data_);
  }

  /// JS truthiness. Bool/number inline (loop conditions); the
  /// remaining types go out of line.
  bool Truthy() const {
    if (is_bool()) return AsBool();
    if (is_number()) {
      const double d = AsNumber();
      return d != 0.0 && d == d;  // NaN is falsy
    }
    return TruthySlow();
  }

  /// Abstract ToString (used by `+` concatenation and console.log).
  std::string ToDisplayString() const;

  /// ToNumber coercion: true→1, "12"→12, null→0, undefined→NaN, …
  double ToNumber() const {
    if (is_number()) return AsNumber();
    return ToNumberSlow();
  }

  /// Strict equality (===). Objects/arrays compare by identity.
  bool StrictEquals(const Value& o) const;

  /// Loose equality (==): strict, plus null == undefined and
  /// number/string cross-coercion.
  bool LooseEquals(const Value& o) const;

 private:
  bool TruthySlow() const;
  double ToNumberSlow() const;

  std::variant<std::monostate, std::nullptr_t, bool, double, std::string,
               std::shared_ptr<ScriptObject>, std::shared_ptr<ScriptArray>,
               std::shared_ptr<ScriptFunction>,
               std::shared_ptr<HostFunctionValue>>
      data_;
};

/// Insertion-ordered property map (for-in iterates in insertion order).
/// Properties written through resolved member accesses / object
/// literals carry an interned key id, so lookups from resolved code
/// compare integers; dynamically-computed keys (`obj[k] = v`, JSON
/// interop) stay plain strings and are matched by string comparison.
class ScriptObject {
 public:
  struct Entry {
    uint32_t key_id = kNoNameId;
    std::string key;
    Value value;
    Entry(uint32_t id, std::string k, Value v);
  };

  Value* Find(const std::string& key);
  const Value* Find(const std::string& key) const;
  /// Fast path for pre-interned keys. `key` is the spelling of
  /// `key_id`, used to match entries stored without an id.
  Value* FindInterned(uint32_t key_id, const std::string& key);
  void Set(const std::string& key, Value v);
  void SetInterned(uint32_t key_id, const std::string& key, Value v);
  bool Erase(const std::string& key);
  size_t size() const { return items_.size(); }
  const std::vector<Entry>& items() const { return items_; }

 private:
  std::vector<Entry> items_;
};

/// Lexical scope chain. Binding names are interned (see intern.hpp),
/// so lookups from resolved code compare integer ids; the string API
/// is kept for host code and the unresolved fallback path.
class Environment : public std::enable_shared_from_this<Environment> {
 public:
  static constexpr uint32_t kNpos = 0xFFFFFFFFu;

  explicit Environment(std::shared_ptr<Environment> parent = nullptr);
  ~Environment();

  /// Environments currently alive in the process. Closure-captured
  /// environments form shared_ptr cycles the refcount can never
  /// reclaim; this counter is how tests prove TearDownChain (and the
  /// VM's tracing GC, which never creates Environments at all)
  /// actually return the heap to baseline.
  static size_t live_count();

  /// Explicitly sever every environment owned by the scope chain
  /// rooted at `root`: each live environment whose parent chain
  /// terminates at `root` has its bindings and parent link cleared —
  /// including closure cycles that are no longer reachable from the
  /// root's bindings (orphaned by overwrites) but still parent-chain
  /// into it. Called when a Context is destroyed — the values inside
  /// become unusable, so only tear down a scope chain that nothing
  /// will touch again.
  static void TearDownChain(const std::shared_ptr<Environment>& root);

  /// Define in this scope (shadows outer scopes).
  void Define(const std::string& name, Value v, bool is_const = false);
  void DefineById(uint32_t name_id, Value v, bool is_const = false);

  /// Lookup through the chain; nullptr when unbound.
  Value* Find(const std::string& name);
  Value* FindById(uint32_t name_id);

  /// Assign to an existing binding; errors when unbound or const.
  Status Assign(const std::string& name, Value v);
  Status AssignById(uint32_t name_id, Value v);

  bool IsConst(const std::string& name) const;

  /// Index of a binding directly in this scope (not the chain), or
  /// kNpos. Indices are stable: bindings are never erased.
  uint32_t LocalIndexById(uint32_t name_id) const;
  /// Binding value at `index` iff that binding is named `name_id`,
  /// else nullptr — the verification step of the interpreter's inline
  /// caches.
  Value* ValueAtIfId(uint32_t index, uint32_t name_id);
  bool ConstAt(uint32_t index) const { return bindings_[index].is_const; }

  /// Names bound directly in this scope (not the chain), in
  /// definition order — used for module state snapshots.
  std::vector<std::string> LocalNames() const;

  const std::shared_ptr<Environment>& parent() const { return parent_; }

 private:
  struct Binding {
    uint32_t name_id;
    Value value;
    bool is_const = false;
  };
  std::shared_ptr<Environment> parent_;
  std::vector<Binding> bindings_;
};

}  // namespace vp::script
