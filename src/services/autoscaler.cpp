#include "services/autoscaler.hpp"

#include "common/log.hpp"

namespace vp::services {

Autoscaler::Autoscaler(sim::Cluster* cluster, ContainerRuntime* containers,
                       ServiceRegistry* registry, AutoscalerOptions options)
    : cluster_(cluster), containers_(containers), registry_(registry),
      options_(options) {}

void Autoscaler::Start() {
  if (running_) return;
  running_ = true;
  cluster_->simulator().After(options_.check_interval, [this] { Check(); });
}

void Autoscaler::Watch(const std::string& device, const std::string& service) {
  watched_.emplace_back(device, service);
}

void Autoscaler::Check() {
  if (!running_) return;
  const TimePoint now = cluster_->Now();
  for (const auto& [device, service] : watched_) {
    auto replicas = registry_->Replicas(device, service);
    if (replicas.empty()) continue;
    const auto key = std::make_pair(device, service);

    double load;
    std::optional<double> probed =
        load_probe_ ? load_probe_(device, service) : std::nullopt;
    if (probed.has_value()) {
      load = *probed;
    } else {
      int total_backlog = 0;
      for (ServiceInstance* replica : replicas) {
        total_backlog += replica->backlog(now);
      }
      load = static_cast<double>(total_backlog) /
             static_cast<double>(replicas.size());
    }

    if (load > options_.backlog_high_water &&
        static_cast<int>(replicas.size()) < options_.max_replicas_per_group) {
      idle_checks_[key] = 0;
      auto instance = containers_->Launch(device, service);
      if (instance.ok()) {
        registry_->Add(std::move(*instance));
        events_.push_back(ScaleEvent{now, device, service,
                                     static_cast<int>(replicas.size()) + 1,
                                     +1});
        VP_INFO("autoscaler")
            << "scaled " << service << " on " << device << " to "
            << replicas.size() + 1 << " replicas (load " << load << ")";
      } else {
        VP_WARN("autoscaler") << "scale-up of " << service << " on " << device
                              << " failed: " << instance.error().ToString();
      }
      continue;
    }

    // Scale-down: a sustained idle streak retires one replica at a
    // time (gracefully — only an idle replica, never below the floor).
    if (options_.scale_down_grace_checks > 0 &&
        load < options_.backlog_low_water &&
        static_cast<int>(replicas.size()) > options_.min_replicas_per_group) {
      if (++idle_checks_[key] >= options_.scale_down_grace_checks) {
        idle_checks_[key] = 0;
        const size_t keep =
            static_cast<size_t>(options_.min_replicas_per_group);
        if (registry_->RetireIdleReplica(device, service, keep, now)) {
          const int after = static_cast<int>(replicas.size()) - 1;
          events_.push_back(ScaleEvent{now, device, service, after, -1});
          VP_INFO("autoscaler")
              << "retired idle replica of " << service << " on " << device
              << " (now " << after << ", load " << load << ")";
        }
      }
    } else {
      idle_checks_[key] = 0;
    }
  }
  cluster_->simulator().After(options_.check_interval, [this] { Check(); });
}

}  // namespace vp::services
