#include "services/autoscaler.hpp"

#include "common/log.hpp"

namespace vp::services {

Autoscaler::Autoscaler(sim::Cluster* cluster, ContainerRuntime* containers,
                       ServiceRegistry* registry, AutoscalerOptions options)
    : cluster_(cluster), containers_(containers), registry_(registry),
      options_(options) {}

void Autoscaler::Start() {
  if (running_) return;
  running_ = true;
  cluster_->simulator().After(options_.check_interval, [this] { Check(); });
}

void Autoscaler::Watch(const std::string& device, const std::string& service) {
  watched_.emplace_back(device, service);
}

void Autoscaler::Check() {
  if (!running_) return;
  const TimePoint now = cluster_->Now();
  for (const auto& [device, service] : watched_) {
    auto replicas = registry_->Replicas(device, service);
    if (replicas.empty() ||
        static_cast<int>(replicas.size()) >= options_.max_replicas_per_group) {
      continue;
    }
    int total_backlog = 0;
    for (ServiceInstance* replica : replicas) {
      total_backlog += replica->backlog(now);
    }
    const double avg = static_cast<double>(total_backlog) /
                       static_cast<double>(replicas.size());
    if (avg > options_.backlog_high_water) {
      auto instance = containers_->Launch(device, service);
      if (instance.ok()) {
        registry_->Add(std::move(*instance));
        events_.push_back(ScaleEvent{now, device, service,
                                     static_cast<int>(replicas.size()) + 1});
        VP_INFO("autoscaler")
            << "scaled " << service << " on " << device << " to "
            << replicas.size() + 1 << " replicas (avg backlog " << avg << ")";
      } else {
        VP_WARN("autoscaler") << "scale-up of " << service << " on " << device
                              << " failed: " << instance.error().ToString();
      }
    }
  }
  cluster_->simulator().After(options_.check_interval, [this] { Check(); });
}

}  // namespace vp::services
