// Container runtime simulation.
//
// "we can only deploy the services on the devices that support
//  containers as services will be running inside containers" (§2.2).
//
// A ServiceInstance is one running replica: a Service implementation
// bound to a dedicated ExecutionLane on its device (containers run in
// parallel with each other and with the module runtime). Launching a
// container charges a startup delay; native services (camera, display
// — the paper's blue boxes in Fig. 4) skip the container path and can
// run on constrained devices.
#pragma once

#include <memory>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "modelreg/artifact.hpp"
#include "services/service.hpp"
#include "sim/cluster.hpp"

namespace vp::services {

/// Resolves a "frame_id" in a request against the *serving* device's
/// frame store. Provided by the core runtime (which owns the stores).
using FrameResolver = std::function<Result<media::FramePtr>(
    const std::string& device, media::FrameId id)>;

struct ServiceInstanceStats {
  uint64_t requests = 0;
  uint64_t errors = 0;
  Duration busy;
  /// Requests a wedged replica accepted and never answered.
  uint64_t swallowed = 0;
  /// Requests refused or voided because the replica was crashed.
  uint64_t refused = 0;
  /// Micro-batches admitted via InvokeBatch.
  uint64_t batches = 0;
};

/// One member of a micro-batch: the request plus its caller's
/// completion callback.
struct BatchEntry {
  ServiceRequest request;
  std::function<void(Result<json::Value>)> done;
};

class ServiceInstance {
 public:
  ServiceInstance(std::string device, std::unique_ptr<Service> impl,
                  sim::ExecutionLane* lane, bool native,
                  double cost_jitter = 0.0, uint64_t jitter_seed = 1)
      : device_(std::move(device)), impl_(std::move(impl)), lane_(lane),
        native_(native), name_(impl_->name()), cost_jitter_(cost_jitter),
        jitter_rng_(jitter_seed) {}

  const std::string& device() const { return device_; }
  const std::string& service_name() const { return name_; }
  bool native() const { return native_; }
  sim::ExecutionLane* lane() const { return lane_; }
  const ServiceInstanceStats& stats() const { return stats_; }

  /// Tasks admitted but not finished on this replica's lane.
  int backlog(TimePoint now) const { return lane_->backlog(now); }

  /// Asynchronously handle a request: the compute cost is charged on
  /// this replica's lane; `done` fires at completion with the result.
  /// A crashed replica answers kUnavailable immediately (connection
  /// refused); a wedged replica accepts the request and never answers.
  void Invoke(ServiceRequest request,
              std::function<void(Result<json::Value>)> done);

  /// Execute several requests as ONE lane admission (micro-batching):
  /// the batch is charged `impl->BatchCost(batch) + extra_cost`,
  /// jittered once, so services with per-call setup amortize it.
  /// Fault semantics mirror Invoke, batch-wide: a crashed replica
  /// refuses every entry immediately; a wedge swallows the whole batch
  /// (no entry's `done` fires — callers recover by timeout); a crash
  /// mid-batch fails every entry with kUnavailable and nothing is
  /// handled twice. `batch_done(delivered)` fires when the batch
  /// resolves — `delivered` is false only for the swallowed case, so a
  /// scheduler can health-mark the replica the way PR 1's gateway
  /// watchdog does.
  void InvokeBatch(std::vector<BatchEntry> entries, Duration extra_cost,
                   std::function<void(bool delivered)> batch_done);

  // -- fault surface (driven by the FaultInjector / orchestrator) ------
  /// Hard-kill: in-flight requests die with the process (their `done`
  /// fires with an error), new requests are refused until Restart.
  void Crash(TimePoint now);

  /// Bring a crashed replica back up; charges `startup_cost` on the
  /// lane (container cold start) and clears all health marks.
  void Restart(TimePoint now, Duration startup_cost);

  /// Wedge (true): accept requests, never reply. Unwedge (false) also
  /// clears any suspicion so the replica rejoins balancing.
  void SetWedged(bool wedged);

  /// Health mark set by the runtime when a call to this replica timed
  /// out; the replica is excluded from balancing until `until` (or a
  /// Restart/unwedge) — a circuit breaker with automatic half-open.
  void MarkSuspected(TimePoint until) {
    if (until > suspected_until_) suspected_until_ = until;
  }

  // -- model lifecycle (model-backed services only) ---------------------
  /// Bind this replica's model slot (and hand it to the impl). The
  /// rollout machinery swaps the handle's artifact to upgrade/canary/
  /// roll back this one replica without touching its group.
  void BindModel(std::shared_ptr<modelreg::ModelHandle> handle) {
    model_ = handle;
    impl_->BindModel(std::move(handle));
  }
  const std::shared_ptr<modelreg::ModelHandle>& model_handle() const {
    return model_;
  }
  /// Content id of the replica's current model version; "" for
  /// services without a model.
  std::string model_version() const {
    return model_ != nullptr ? model_->version() : "";
  }

  bool crashed() const { return crashed_; }
  bool wedged() const { return wedged_; }
  bool suspected(TimePoint now) const { return now < suspected_until_; }
  /// Eligible for load balancing at `now`.
  bool available(TimePoint now) const {
    return !crashed_ && !suspected(now);
  }
  /// Total time spent crashed, including the open interval at `now`.
  Duration downtime(TimePoint now) const {
    return crashed_ ? downtime_ + (now - down_since_) : downtime_;
  }

 private:
  std::string device_;
  std::unique_ptr<Service> impl_;
  sim::ExecutionLane* lane_;
  bool native_;
  std::string name_;
  /// Multiplicative compute-time variance (σ of a clamped Gaussian) —
  /// real devices do not execute a CNN in constant time.
  double cost_jitter_;
  Rng jitter_rng_;
  ServiceInstanceStats stats_;
  std::shared_ptr<modelreg::ModelHandle> model_;

  // Fault state. `epoch_` counts crashes: a lane task captured before
  // a crash observes the mismatch on completion and errors out instead
  // of delivering a result computed by a dead process.
  bool crashed_ = false;
  bool wedged_ = false;
  uint64_t epoch_ = 0;
  TimePoint suspected_until_;
  TimePoint down_since_;
  Duration downtime_;
};

struct ContainerOptions {
  /// Container cold-start delay (image already present on device).
  Duration startup = Duration::Millis(350);
  /// Native services start immediately.
  Duration native_startup = Duration::Millis(5);
  /// Service compute-time jitter (multiplicative σ; 0 = deterministic).
  double cost_jitter = 0.0;
  uint64_t jitter_seed = 1;
};

/// Launches replicas on cluster devices.
class ContainerRuntime {
 public:
  ContainerRuntime(sim::Cluster* cluster, const ServiceCatalog* catalog,
                   ContainerOptions options = {})
      : cluster_(cluster), catalog_(catalog), options_(options) {}

  /// Launch a containerized replica of `service` on `device`.
  /// Fails on unknown device/service, non-container device, or core
  /// exhaustion. The instance becomes usable after the startup delay
  /// (callers may invoke earlier; work queues behind the startup).
  Result<std::unique_ptr<ServiceInstance>> Launch(
      const std::string& device, const std::string& service);

  /// Launch a native (non-containerized) service — allowed on any
  /// device; runs on a dedicated native lane.
  Result<std::unique_ptr<ServiceInstance>> LaunchNative(
      const std::string& device, const std::string& service);

  /// Resolves the model version a fresh replica of (device, service)
  /// must run — supplied by the orchestrator, which consults the
  /// rollout controller's stable version and the model registry.
  using ModelResolver = std::function<std::shared_ptr<modelreg::ModelHandle>(
      const std::string& device, const std::string& service,
      const std::string& kind)>;
  void set_model_resolver(ModelResolver resolver) {
    model_resolver_ = std::move(resolver);
  }

  const ContainerOptions& options() const { return options_; }

 private:
  Result<std::unique_ptr<ServiceInstance>> LaunchImpl(
      const std::string& device, const std::string& service, bool native);

  sim::Cluster* cluster_;
  const ServiceCatalog* catalog_;
  ContainerOptions options_;
  ModelResolver model_resolver_;
  uint64_t launch_counter_ = 0;
  // Lanes for native services; kept alive for the cluster's lifetime.
  std::vector<std::unique_ptr<sim::ExecutionLane>> native_lanes_;
};

}  // namespace vp::services
