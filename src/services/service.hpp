// Stateless services (paper §2.2).
//
// "The main video analytics are performed by stateless services
//  accessible to modules. … These services all receive needed data as
//  input so they do not require saving state. This allows the services
//  to be shared among different applications and also allows for
//  horizontal scaling."
//
// A Service is a pure request → response handler plus a compute-cost
// model. Handlers MUST NOT keep per-caller state; anything evolving
// (e.g. the rep counter's cluster state) travels inside the request
// and response. Tests assert replica-count invariance of results.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"
#include "json/value.hpp"
#include "media/frame.hpp"

namespace vp::modelreg {
class ModelHandle;
}

namespace vp::services {

struct ServiceRequest {
  json::Value payload;
  /// Frame resolved from the payload's "frame_id" against the serving
  /// device's FrameStore (nullptr when the request carries no frame).
  media::FramePtr frame;
};

/// A micro-batch of requests handed to one replica in a single
/// admission (non-owning views; the batch lives for the call only).
using ServiceBatch = std::vector<const ServiceRequest*>;

class Service {
 public:
  virtual ~Service() = default;

  virtual std::string name() const = 0;

  /// Reference-device compute cost of handling `request`.
  virtual Duration Cost(const ServiceRequest& request) const = 0;

  /// Pure handler. Runs when the simulated compute completes.
  virtual Result<json::Value> Handle(const ServiceRequest& request) = 0;

  /// Reference-device compute cost of handling `batch` in one
  /// admission. The default is the unbatched sum — no free lunch.
  /// Services with per-call setup (model/network warm path, weight
  /// paging) override this to amortize the setup across the batch; see
  /// AmortizedBatchCost.
  virtual Duration BatchCost(const ServiceBatch& batch) const;

  /// Batched execution hook: handle several requests in one admission,
  /// returning one result per request, in order. The default loops
  /// over Handle() so every existing service works unmodified.
  virtual std::vector<Result<json::Value>> ExecuteBatch(
      const ServiceBatch& batch);

  // -- model lifecycle (src/modelreg) -----------------------------------
  /// Non-empty for model-backed services: the modelreg kind whose
  /// artifacts this service runs (e.g. modelreg::kActivityKind). The
  /// container runtime binds a per-replica ModelHandle at launch.
  virtual std::string ModelKind() const { return ""; }
  /// Bind the replica's model slot. Model-backed services resolve
  /// their model through it on every request; the rollout machinery
  /// swaps its artifact to upgrade/canary/roll back the replica.
  virtual void BindModel(std::shared_ptr<modelreg::ModelHandle> handle) {
    (void)handle;
  }
  /// The bound handle; nullptr for services without one.
  virtual std::shared_ptr<modelreg::ModelHandle> model_handle() const {
    return nullptr;
  }
};

/// Batch-cost helper for services whose per-call cost includes a fixed
/// `setup` component (load weights, set up the inference graph): the
/// first request pays full price, each later one saves `setup`, floored
/// at 20% of its unbatched cost so a batch never becomes free.
Duration AmortizedBatchCost(const Service& service, const ServiceBatch& batch,
                            Duration setup);

using ServiceFactory = std::function<std::unique_ptr<Service>()>;

/// Catalog of installable service images ("services are preinstalled
/// on some edge devices", §2.2). Name → factory.
class ServiceCatalog {
 public:
  Status Register(const std::string& name, ServiceFactory factory);
  Result<std::unique_ptr<Service>> Create(const std::string& name) const;
  bool Contains(const std::string& name) const {
    return factories_.count(name) != 0;
  }
  std::vector<std::string> names() const;

  /// Catalog with every builtin VideoPipe service registered:
  /// pose_detector, activity_classifier, rep_counter, object_detector,
  /// face_detector, fall_detector, image_classifier, display.
  static ServiceCatalog WithBuiltins();

 private:
  std::map<std::string, ServiceFactory> factories_;
};

/// Register the builtin services into an existing catalog.
void RegisterBuiltinServices(ServiceCatalog& catalog);

}  // namespace vp::services
