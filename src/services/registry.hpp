// Service registry: where replicas live and how callers find them.
//
// Keyed by (device, service). Lookup returns the least-loaded replica
// in the group (power-of-all-choices — groups are tiny), which is what
// gives stateless services their horizontal-scaling payoff (§2.2,
// §5.2.2).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "services/container.hpp"

namespace vp::services {

class ServiceRegistry {
 public:
  explicit ServiceRegistry(sim::Cluster* cluster) : cluster_(cluster) {}

  /// Take ownership of a launched replica.
  void Add(std::unique_ptr<ServiceInstance> instance);

  /// Least-backlog *available* replica of `service` on `device` —
  /// crashed and timeout-suspected replicas do not participate in
  /// balancing. nullptr when none is available.
  ServiceInstance* Find(const std::string& device,
                        const std::string& service);

  /// All replicas of `service` on `device` (healthy or not).
  std::vector<ServiceInstance*> Replicas(const std::string& device,
                                         const std::string& service);

  /// Every replica in the registry (fault-injection wiring, reports).
  std::vector<ServiceInstance*> AllReplicas();

  /// Replicas of the group currently eligible for balancing.
  size_t AvailableReplicaCount(const std::string& device,
                               const std::string& service);

  /// Replicas of the group whose bound model is `version` (rollout
  /// bookkeeping: which replicas run the canary vs the incumbent).
  std::vector<ServiceInstance*> ReplicasRunning(const std::string& device,
                                                const std::string& service,
                                                const std::string& version);

  /// Distinct model versions live in one group, in first-seen order.
  /// A completed promote/rollback must leave exactly one.
  std::vector<std::string> LiveModelVersions(const std::string& device,
                                             const std::string& service);

  /// Cluster-wide accumulated replica downtime (recovery metric).
  Duration TotalDowntime(TimePoint now) const;

  /// Devices hosting at least one replica of `service`.
  std::vector<std::string> DevicesHosting(const std::string& service) const;

  /// Total replicas across the cluster.
  size_t total_instances() const;

  /// Aggregate request count for one service group (tests/metrics).
  uint64_t RequestCount(const std::string& device,
                        const std::string& service);

  /// Device death: crash every replica on `device` and move them out of
  /// their groups so lookups stop finding them. The corpses are kept
  /// alive in a graveyard — in-flight gateway watchdog lambdas hold raw
  /// ServiceInstance pointers — until registry destruction. Returns the
  /// number of replicas retired.
  size_t RetireDevice(const std::string& device, TimePoint now);

  /// Retire every replica of one (device, service) group — used to
  /// fence zombie replicas on a reconnecting device whose work was
  /// healed onto survivors during a partition. Same graveyard
  /// semantics as RetireDevice. Returns the number retired.
  size_t RetireGroup(const std::string& device, const std::string& service,
                     TimePoint now);

  /// Scale-down: gracefully retire one idle containerized replica of
  /// the group, keeping at least `keep` replicas. The replica must be
  /// available with an empty lane (no in-flight work is interrupted);
  /// its container core is released and the instance moves to the
  /// graveyard (uncrashed — scale-down is not downtime) so the group's
  /// request history survives. Returns false when no replica fits.
  bool RetireIdleReplica(const std::string& device,
                         const std::string& service, size_t keep,
                         TimePoint now);

  size_t retired_instances() const { return graveyard_.size(); }

 private:
  using Key = std::pair<std::string, std::string>;  // (device, service)
  sim::Cluster* cluster_;
  std::map<Key, std::vector<std::unique_ptr<ServiceInstance>>> groups_;
  std::vector<std::unique_ptr<ServiceInstance>> graveyard_;
};

}  // namespace vp::services
