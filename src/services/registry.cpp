#include "services/registry.hpp"

#include <algorithm>

namespace vp::services {

void ServiceRegistry::Add(std::unique_ptr<ServiceInstance> instance) {
  const Key key{instance->device(), instance->service_name()};
  groups_[key].push_back(std::move(instance));
}

ServiceInstance* ServiceRegistry::Find(const std::string& device,
                                       const std::string& service) {
  auto it = groups_.find(Key{device, service});
  if (it == groups_.end() || it->second.empty()) return nullptr;
  const TimePoint now = cluster_->Now();
  // Least-backlog among healthy replicas; crashed or timeout-suspected
  // replicas are excluded from balancing until they restart/recover.
  ServiceInstance* best = nullptr;
  for (const auto& candidate : it->second) {
    if (!candidate->available(now)) continue;
    if (best == nullptr || candidate->backlog(now) < best->backlog(now)) {
      best = candidate.get();
    }
  }
  return best;
}

std::vector<ServiceInstance*> ServiceRegistry::ReplicasRunning(
    const std::string& device, const std::string& service,
    const std::string& version) {
  std::vector<ServiceInstance*> out;
  auto it = groups_.find(Key{device, service});
  if (it == groups_.end()) return out;
  for (const auto& instance : it->second) {
    if (instance->model_version() == version) out.push_back(instance.get());
  }
  return out;
}

std::vector<std::string> ServiceRegistry::LiveModelVersions(
    const std::string& device, const std::string& service) {
  std::vector<std::string> out;
  auto it = groups_.find(Key{device, service});
  if (it == groups_.end()) return out;
  for (const auto& instance : it->second) {
    const std::string version = instance->model_version();
    if (version.empty()) continue;
    if (std::find(out.begin(), out.end(), version) == out.end()) {
      out.push_back(version);
    }
  }
  return out;
}

std::vector<ServiceInstance*> ServiceRegistry::AllReplicas() {
  std::vector<ServiceInstance*> out;
  for (const auto& [key, group] : groups_) {
    for (const auto& instance : group) out.push_back(instance.get());
  }
  return out;
}

Duration ServiceRegistry::TotalDowntime(TimePoint now) const {
  Duration total;
  for (const auto& [key, group] : groups_) {
    for (const auto& instance : group) total += instance->downtime(now);
  }
  // Replicas retired by RetireDevice keep accruing downtime until their
  // device's work is relaunched elsewhere — skipping them would make
  // recovery look cheaper the harder the failure was.
  for (const auto& instance : graveyard_) total += instance->downtime(now);
  return total;
}

size_t ServiceRegistry::AvailableReplicaCount(const std::string& device,
                                              const std::string& service) {
  size_t n = 0;
  const TimePoint now = cluster_->Now();
  auto it = groups_.find(Key{device, service});
  if (it == groups_.end()) return 0;
  for (const auto& instance : it->second) {
    if (instance->available(now)) ++n;
  }
  return n;
}

std::vector<ServiceInstance*> ServiceRegistry::Replicas(
    const std::string& device, const std::string& service) {
  std::vector<ServiceInstance*> out;
  auto it = groups_.find(Key{device, service});
  if (it == groups_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& instance : it->second) out.push_back(instance.get());
  return out;
}

std::vector<std::string> ServiceRegistry::DevicesHosting(
    const std::string& service) const {
  std::vector<std::string> out;
  for (const auto& [key, group] : groups_) {
    if (key.second == service && !group.empty()) {
      out.push_back(key.first);
    }
  }
  return out;
}

size_t ServiceRegistry::total_instances() const {
  size_t total = 0;
  for (const auto& [key, group] : groups_) total += group.size();
  return total;
}

size_t ServiceRegistry::RetireDevice(const std::string& device,
                                     TimePoint now) {
  size_t retired = 0;
  for (auto it = groups_.begin(); it != groups_.end();) {
    if (it->first.first != device) {
      ++it;
      continue;
    }
    for (auto& instance : it->second) {
      instance->Crash(now);  // no-op if already crashed
      graveyard_.push_back(std::move(instance));
      ++retired;
    }
    it = groups_.erase(it);
  }
  return retired;
}

size_t ServiceRegistry::RetireGroup(const std::string& device,
                                    const std::string& service,
                                    TimePoint now) {
  auto it = groups_.find(Key{device, service});
  if (it == groups_.end()) return 0;
  size_t retired = 0;
  for (auto& instance : it->second) {
    instance->Crash(now);  // no-op if already crashed
    graveyard_.push_back(std::move(instance));
    ++retired;
  }
  groups_.erase(it);
  return retired;
}

uint64_t ServiceRegistry::RequestCount(const std::string& device,
                                       const std::string& service) {
  uint64_t total = 0;
  for (ServiceInstance* instance : Replicas(device, service)) {
    total += instance->stats().requests;
  }
  // Retired replicas served real traffic before their device died (or
  // before scale-down); the group's request history must keep it.
  for (const auto& instance : graveyard_) {
    if (instance->device() == device &&
        instance->service_name() == service) {
      total += instance->stats().requests;
    }
  }
  return total;
}

bool ServiceRegistry::RetireIdleReplica(const std::string& device,
                                        const std::string& service,
                                        size_t keep, TimePoint now) {
  auto it = groups_.find(Key{device, service});
  if (it == groups_.end() || it->second.size() <= keep) return false;
  // Pick an idle, healthy, containerized replica — never interrupt
  // in-flight work and never touch native singletons (camera, display).
  auto& group = it->second;
  for (auto member = group.begin(); member != group.end(); ++member) {
    ServiceInstance* candidate = member->get();
    if (candidate->native() || !candidate->available(now) ||
        candidate->backlog(now) != 0) {
      continue;
    }
    // Return the container core; the lane object stays alive for any
    // stale event still referencing it. The instance moves to the
    // graveyard (not crashed — scale-down is not downtime) so its
    // request history keeps counting toward the group.
    if (sim::Device* dev = cluster_->FindDevice(device)) {
      dev->ReleaseContainerLane(candidate->lane());
    }
    graveyard_.push_back(std::move(*member));
    group.erase(member);
    return true;
  }
  return false;
}

}  // namespace vp::services
