// Service autoscaler — the paper's future-work item, implemented
// (§7: "scale up services automatically based on workload"; §5.2.2:
// "It also implies that we should scale the services at this point,
// which is convenient in our design as the services are stateless").
//
// Periodically samples per-group load; when the average load per
// replica exceeds the high-water mark, launches another replica of the
// same service on the same device (if container cores remain). When it
// stays below the low-water mark for a sustained run of checks, an
// idle replica is gracefully retired (keeping at least
// `min_replicas_per_group`) so batched dispatch does not strand
// over-provisioned replicas.
//
// The load signal defaults to raw replica lane backlog; the serving
// layer plugs in a LoadProbe so scheduler queue pressure (queued +
// in-flight per available replica) drives scaling instead.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "services/registry.hpp"

namespace vp::services {

struct AutoscalerOptions {
  Duration check_interval = Duration::Millis(500);
  /// Scale up when average load per replica exceeds this.
  double backlog_high_water = 2.0;
  /// Scale down when average load per replica stays below this …
  double backlog_low_water = 0.1;
  /// … for this many consecutive checks (0 disables scale-down).
  int scale_down_grace_checks = 4;
  int max_replicas_per_group = 4;
  /// Never retire below this many replicas.
  int min_replicas_per_group = 1;
};

struct ScaleEvent {
  TimePoint when;
  std::string device;
  std::string service;
  int replicas_after = 0;
  /// +1 for a scale-up, -1 for a scale-down.
  int direction = +1;
};

/// Optional override of the load signal for one (device, service)
/// group. Return nullopt to fall back to raw replica backlog.
using LoadProbe = std::function<std::optional<double>(
    const std::string& device, const std::string& service)>;

class Autoscaler {
 public:
  Autoscaler(sim::Cluster* cluster, ContainerRuntime* containers,
             ServiceRegistry* registry, AutoscalerOptions options = {});

  /// Begin periodic checks (schedules itself on the simulator).
  void Start();
  void Stop() { running_ = false; }

  /// Watch a (device, service) group for scaling.
  void Watch(const std::string& device, const std::string& service);

  /// Replace the load signal (e.g. serving scheduler queue pressure).
  void set_load_probe(LoadProbe probe) { load_probe_ = std::move(probe); }

  const std::vector<ScaleEvent>& events() const { return events_; }

 private:
  void Check();

  sim::Cluster* cluster_;
  ContainerRuntime* containers_;
  ServiceRegistry* registry_;
  AutoscalerOptions options_;
  std::vector<std::pair<std::string, std::string>> watched_;
  std::vector<ScaleEvent> events_;
  LoadProbe load_probe_;
  /// Consecutive below-low-water checks per watched group.
  std::map<std::pair<std::string, std::string>, int> idle_checks_;
  bool running_ = false;
};

}  // namespace vp::services
