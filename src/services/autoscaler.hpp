// Service autoscaler — the paper's future-work item, implemented
// (§7: "scale up services automatically based on workload"; §5.2.2:
// "It also implies that we should scale the services at this point,
// which is convenient in our design as the services are stateless").
//
// Periodically samples per-group backlog; when the average backlog per
// replica exceeds the high-water mark, launches another replica of the
// same service on the same device (if container cores remain).
#pragma once

#include <string>
#include <vector>

#include "services/registry.hpp"

namespace vp::services {

struct AutoscalerOptions {
  Duration check_interval = Duration::Millis(500);
  /// Scale up when average backlog per replica exceeds this.
  double backlog_high_water = 2.0;
  int max_replicas_per_group = 4;
};

struct ScaleEvent {
  TimePoint when;
  std::string device;
  std::string service;
  int replicas_after = 0;
};

class Autoscaler {
 public:
  Autoscaler(sim::Cluster* cluster, ContainerRuntime* containers,
             ServiceRegistry* registry, AutoscalerOptions options = {});

  /// Begin periodic checks (schedules itself on the simulator).
  void Start();
  void Stop() { running_ = false; }

  /// Watch a (device, service) group for scaling.
  void Watch(const std::string& device, const std::string& service);

  const std::vector<ScaleEvent>& events() const { return events_; }

 private:
  void Check();

  sim::Cluster* cluster_;
  ContainerRuntime* containers_;
  ServiceRegistry* registry_;
  AutoscalerOptions options_;
  std::vector<std::pair<std::string, std::string>> watched_;
  std::vector<ScaleEvent> events_;
  bool running_ = false;
};

}  // namespace vp::services
