#include "services/service.hpp"

namespace vp::services {

Duration Service::BatchCost(const ServiceBatch& batch) const {
  Duration total;
  for (const ServiceRequest* request : batch) total += Cost(*request);
  return total;
}

std::vector<Result<json::Value>> Service::ExecuteBatch(
    const ServiceBatch& batch) {
  std::vector<Result<json::Value>> out;
  out.reserve(batch.size());
  for (const ServiceRequest* request : batch) out.push_back(Handle(*request));
  return out;
}

Duration AmortizedBatchCost(const Service& service, const ServiceBatch& batch,
                            Duration setup) {
  Duration total;
  bool first = true;
  for (const ServiceRequest* request : batch) {
    const Duration cost = service.Cost(*request);
    if (first) {
      total += cost;
      first = false;
      continue;
    }
    const Duration floor = cost * 0.2;
    const Duration marginal = cost - setup;
    total += marginal > floor ? marginal : floor;
  }
  return total;
}

Status ServiceCatalog::Register(const std::string& name,
                                ServiceFactory factory) {
  if (factories_.count(name) != 0) {
    return Status(StatusCode::kAlreadyExists,
                  "service '" + name + "' already registered");
  }
  factories_[name] = std::move(factory);
  return Status::Ok();
}

Result<std::unique_ptr<Service>> ServiceCatalog::Create(
    const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return NotFound("service '" + name + "' not in catalog");
  }
  return it->second();
}

std::vector<std::string> ServiceCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

ServiceCatalog ServiceCatalog::WithBuiltins() {
  ServiceCatalog catalog;
  RegisterBuiltinServices(catalog);
  return catalog;
}

}  // namespace vp::services
