#include "services/service.hpp"

namespace vp::services {

Status ServiceCatalog::Register(const std::string& name,
                                ServiceFactory factory) {
  if (factories_.count(name) != 0) {
    return Status(StatusCode::kAlreadyExists,
                  "service '" + name + "' already registered");
  }
  factories_[name] = std::move(factory);
  return Status::Ok();
}

Result<std::unique_ptr<Service>> ServiceCatalog::Create(
    const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return NotFound("service '" + name + "' not in catalog");
  }
  return it->second();
}

std::vector<std::string> ServiceCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

ServiceCatalog ServiceCatalog::WithBuiltins() {
  ServiceCatalog catalog;
  RegisterBuiltinServices(catalog);
  return catalog;
}

}  // namespace vp::services
