#include "services/models.hpp"

#include <mutex>

#include "common/log.hpp"
#include "cv/dataset.hpp"
#include "media/renderer.hpp"
#include "media/video_source.hpp"

namespace vp::services {
namespace {

struct ActivityModelBundle {
  cv::ActivityClassifier classifier;
  double test_accuracy = 0;
};

const ActivityModelBundle& ActivityBundle() {
  static const ActivityModelBundle bundle = [] {
    cv::DatasetOptions options;
    options.samples_per_label = 14;
    options.seed = 99;
    auto windows = cv::GenerateActivityDataset(options);
    auto split = cv::SplitTrainTest(std::move(windows), 0.25, 7);
    ActivityModelBundle out{cv::TrainActivityClassifier(split.train, 3), 0.0};
    out.test_accuracy = cv::EvaluateActivityAccuracy(out.classifier,
                                                     split.test);
    VP_INFO("models") << "activity kNN trained: " << split.train.size()
                      << " train / " << split.test.size()
                      << " test windows, accuracy "
                      << out.test_accuracy * 100.0 << "%";
    return out;
  }();
  return bundle;
}

}  // namespace

const cv::ActivityClassifier& SharedActivityModel() {
  return ActivityBundle().classifier;
}

double SharedActivityModelTestAccuracy() {
  return ActivityBundle().test_accuracy;
}

const cv::ImageClassifier& SharedImageClassifierModel() {
  static const cv::ImageClassifier model = [] {
    cv::ImageClassifier classifier(12);
    media::SceneOptions scene;
    // Person present: render idle/squat frames.
    auto script = media::MotionScript::Make({{"idle", 4.0, {}},
                                             {"squat", 4.0, {}}});
    media::SyntheticVideoSource with_person(std::move(*script), 10.0, scene,
                                            5);
    for (uint64_t f = 0; f < 40; f += 2) {
      classifier.Train("person_present", with_person.CaptureFrame(f).image);
    }
    // Empty room: background + noise only.
    media::Pose hidden;
    hidden.visible.fill(false);
    for (uint64_t f = 0; f < 20; ++f) {
      classifier.Train("empty_room",
                       media::RenderScene(hidden, scene, 1000 + f));
    }
    return classifier;
  }();
  return model;
}

}  // namespace vp::services
