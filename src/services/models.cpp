#include "services/models.hpp"

#include "common/log.hpp"

namespace vp::services {

std::optional<modelreg::ModelSpec> DefaultModelSpecForService(
    const std::string& service) {
  if (service == "activity_classifier") {
    return modelreg::DefaultActivitySpec();
  }
  if (service == "image_classifier") {
    return modelreg::DefaultImageSpec();
  }
  return std::nullopt;
}

std::shared_ptr<const modelreg::ModelArtifact> DefaultArtifactForKind(
    const std::string& kind) {
  const modelreg::ModelSpec spec = kind == modelreg::kImageKind
                                       ? modelreg::DefaultImageSpec()
                                       : modelreg::DefaultActivitySpec();
  auto artifact = modelreg::SharedModelRegistry().TrainOrGet(spec);
  if (!artifact.ok()) {
    VP_ERROR("models") << "default model for kind '" << kind
                       << "' failed to train: "
                       << artifact.error().ToString();
    return nullptr;
  }
  return *artifact;
}

}  // namespace vp::services
