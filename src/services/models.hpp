// Shared pretrained models for the builtin services.
//
// Stateless replicas must produce identical answers, so every replica
// of a service shares one deterministic pretrained model (trained
// once per process on the synthetic dataset with fixed seeds —
// standing in for the paper's models trained on "all available
// labelled data").
#pragma once

#include "cv/activity.hpp"
#include "cv/classifier.hpp"

namespace vp::services {

/// Activity kNN trained on the 6 gesture/exercise classes (idle,
/// squat, jumping_jack, lunge, wave, clap). Trained lazily, cached.
const cv::ActivityClassifier& SharedActivityModel();

/// Image classifier over scene thumbnails: "person_present" vs
/// "empty_room".
const cv::ImageClassifier& SharedImageClassifierModel();

/// Withheld-test accuracy of the shared activity model (computed at
/// training time; the paper reports > 90%).
double SharedActivityModelTestAccuracy();

}  // namespace vp::services
