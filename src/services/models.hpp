// Default model recipes for the builtin model-backed services.
//
// Stateless replicas must produce identical answers, so every replica
// of a service group starts from the same versioned artifact: the v0
// spec below, resolved through the content-addressed model registry
// (src/modelreg). The old process-global SharedActivityModel()/
// SharedImageClassifierModel() singletons are gone — each replica now
// holds a ModelHandle the rollout machinery can swap independently,
// which is what makes hot upgrades and canary versions possible.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "modelreg/registry.hpp"

namespace vp::services {

/// The v0 ModelSpec for `service` ("activity_classifier",
/// "image_classifier"); nullopt for services that carry no model.
std::optional<modelreg::ModelSpec> DefaultModelSpecForService(
    const std::string& service);

/// The v0 artifact for `kind` (modelreg::kActivityKind / kImageKind),
/// trained on first use in the process-wide shared registry. This is
/// the fallback for services created without a bound handle (direct
/// catalog use in unit rigs) — equivalent to the old lazy singletons.
std::shared_ptr<const modelreg::ModelArtifact> DefaultArtifactForKind(
    const std::string& kind);

}  // namespace vp::services
