// Builtin VideoPipe services (§2.2, §4.1): pose detection, activity
// recognition, rep counting, object detection, face detection, fall
// detection, image classification, and the TV-side display service.
//
// Request/response conventions (all JSON):
//   pose_detector       {frame_id}                    → DetectedPose
//   activity_classifier {window_features:[…]} or {poses:[…]} → {label, confidence}
//   rep_counter         {state, pose}                 → {state, reps}
//   object_detector     {frame_id, classes?:[{name,r,g,b}]} → {objects:[…]}
//   face_detector       {frame_id} or {pose}          → DetectedFace
//   fall_detector       {poses:[…]}                   → FallAssessment
//   image_classifier    {frame_id}                    → {label, confidence}
//   display             {anything}                    → {displayed, frames_shown}
#include "common/strings.hpp"
#include "cv/face_detector.hpp"
#include "cv/fall_detector.hpp"
#include "cv/features.hpp"
#include "cv/object_detector.hpp"
#include "cv/rep_counter.hpp"
#include "cv/tracker.hpp"
#include "services/models.hpp"
#include "services/service.hpp"

namespace vp::services {
namespace {

Result<std::vector<cv::DetectedPose>> PosesFromPayload(
    const json::Value& payload, const char* key) {
  const json::Value* poses = payload.Find(key);
  if (poses == nullptr || !poses->is_array()) {
    return InvalidArgument(Format("expected '%s' array", key));
  }
  std::vector<cv::DetectedPose> out;
  out.reserve(poses->AsArray().size());
  for (const json::Value& p : poses->AsArray()) {
    auto pose = cv::DetectedPose::FromJson(p);
    if (!pose.ok()) return pose.error();
    out.push_back(std::move(*pose));
  }
  return out;
}

class PoseDetectorService : public Service {
 public:
  std::string name() const override { return "pose_detector"; }
  Duration Cost(const ServiceRequest& request) const override {
    return request.frame ? cv::PoseDetectCost(request.frame->image)
                         : Duration::Millis(0.1);
  }
  Duration BatchCost(const ServiceBatch& batch) const override {
    // The fixed part of PoseDetectCost is dominated by per-invocation
    // CNN setup (graph warm-up, weight paging); batched frames share
    // one setup.
    return AmortizedBatchCost(*this, batch, Duration::Millis(30));
  }
  Result<json::Value> Handle(const ServiceRequest& request) override {
    if (!request.frame) {
      return InvalidArgument("pose_detector: request carries no frame");
    }
    json::Value out = cv::DetectPose(request.frame->image).ToJson();
    out["frame_seq"] = json::Value(static_cast<double>(request.frame->seq));
    return out;
  }
};

/// Base for services that run a versioned model: the container runtime
/// binds a per-replica ModelHandle at launch (so replicas of one group
/// can run different versions during a rollout); instances created
/// outside the container runtime (direct catalog use in unit rigs)
/// lazily fall back to the v0 artifact — the old singleton behavior.
class ModelBackedService : public Service {
 public:
  explicit ModelBackedService(const char* kind) : kind_(kind) {}
  std::string ModelKind() const override { return kind_; }
  void BindModel(std::shared_ptr<modelreg::ModelHandle> handle) override {
    handle_ = std::move(handle);
  }
  std::shared_ptr<modelreg::ModelHandle> model_handle() const override {
    return handle_;
  }

 protected:
  std::shared_ptr<const modelreg::ModelArtifact> Artifact() const {
    if (handle_ == nullptr) {
      handle_ = std::make_shared<modelreg::ModelHandle>(
          DefaultArtifactForKind(kind_));
    }
    return handle_->artifact();
  }

 private:
  std::string kind_;
  mutable std::shared_ptr<modelreg::ModelHandle> handle_;
};

class ActivityClassifierService : public ModelBackedService {
 public:
  ActivityClassifierService() : ModelBackedService(modelreg::kActivityKind) {}
  std::string name() const override { return "activity_classifier"; }
  Duration Cost(const ServiceRequest&) const override {
    // Per-version cost: a rollout candidate may be heavier than the
    // incumbent (spec.cost_multiplier), and the latency gate must see
    // that on real traffic.
    const auto artifact = Artifact();
    return artifact ? artifact->InferenceCost()
                    : cv::ActivityClassifier::Cost();
  }
  Result<json::Value> Handle(const ServiceRequest& request) override {
    const auto artifact = Artifact();
    if (!artifact || !artifact->activity.has_value()) {
      return Internal("activity_classifier: no model bound");
    }
    const cv::ActivityClassifier& model = *artifact->activity;
    Result<cv::ActivityPrediction> prediction =
        InvalidArgument("activity_classifier: expected 'window_features' "
                        "or 'poses'");
    if (const json::Value* features =
            request.payload.Find("window_features");
        features != nullptr && features->is_array()) {
      std::vector<double> f;
      f.reserve(features->AsArray().size());
      for (const json::Value& d : features->AsArray()) {
        if (!d.is_number()) {
          return InvalidArgument("window_features must be numeric");
        }
        f.push_back(d.AsDouble());
      }
      prediction = model.ClassifyFeatures(f);
    } else if (request.payload.Find("poses") != nullptr) {
      auto poses = PosesFromPayload(request.payload, "poses");
      if (!poses.ok()) return poses.error();
      prediction = model.Classify(*poses);
    }
    if (!prediction.ok()) return prediction.error();
    json::Value out = json::Value::MakeObject();
    out["label"] = json::Value(prediction->label);
    out["confidence"] = json::Value(prediction->confidence);
    return out;
  }
};

class RepCounterService : public Service {
 public:
  std::string name() const override { return "rep_counter"; }
  Duration Cost(const ServiceRequest&) const override {
    return cv::RepCounter::Cost();
  }
  Result<json::Value> Handle(const ServiceRequest& request) override {
    const json::Value* pose_json = request.payload.Find("pose");
    if (pose_json == nullptr) {
      return InvalidArgument("rep_counter: missing 'pose'");
    }
    auto pose = cv::DetectedPose::FromJson(*pose_json);
    if (!pose.ok()) return pose.error();

    cv::RepCounterState state;
    if (const json::Value* state_json = request.payload.Find("state");
        state_json != nullptr && state_json->is_object()) {
      auto parsed = cv::RepCounterState::FromJson(*state_json);
      if (!parsed.ok()) return parsed.error();
      state = std::move(*parsed);
    }
    const cv::RepCounter counter;
    auto next = counter.Step(std::move(state), *pose);
    if (!next.ok()) return next.error();
    json::Value out = json::Value::MakeObject();
    out["reps"] = json::Value(next->reps);
    out["state"] = next->ToJson();
    return out;
  }
};

class ObjectDetectorService : public Service {
 public:
  std::string name() const override { return "object_detector"; }
  Duration Cost(const ServiceRequest& request) const override {
    return request.frame ? cv::ObjectDetectCost(request.frame->image)
                         : Duration::Millis(0.1);
  }
  Duration BatchCost(const ServiceBatch& batch) const override {
    return AmortizedBatchCost(*this, batch, Duration::Millis(18));
  }
  Result<json::Value> Handle(const ServiceRequest& request) override {
    if (!request.frame) {
      return InvalidArgument("object_detector: request carries no frame");
    }
    cv::ObjectDetectorOptions options;
    if (const json::Value* classes = request.payload.Find("classes");
        classes != nullptr && classes->is_array()) {
      for (const json::Value& cls : classes->AsArray()) {
        options.classes.push_back(cv::ObjectClass{
            cls.GetString("name", "unknown"),
            media::Rgb{static_cast<uint8_t>(cls.GetInt("r")),
                       static_cast<uint8_t>(cls.GetInt("g")),
                       static_cast<uint8_t>(cls.GetInt("b"))}});
      }
    }
    json::Value out = json::Value::MakeObject();
    json::Value::Array objects;
    for (const cv::DetectedObject& object :
         cv::DetectObjects(request.frame->image, options)) {
      objects.push_back(object.ToJson());
    }
    out["objects"] = json::Value(std::move(objects));
    return out;
  }
};

class FaceDetectorService : public Service {
 public:
  std::string name() const override { return "face_detector"; }
  Duration Cost(const ServiceRequest& request) const override {
    // Cheap path when the caller already has a pose.
    if (request.payload.Find("pose") != nullptr) {
      return Duration::Millis(0.8);
    }
    return request.frame ? cv::FaceDetectCost(request.frame->image)
                         : Duration::Millis(0.1);
  }
  Duration BatchCost(const ServiceBatch& batch) const override {
    return AmortizedBatchCost(*this, batch, Duration::Millis(8));
  }
  Result<json::Value> Handle(const ServiceRequest& request) override {
    if (const json::Value* pose_json = request.payload.Find("pose");
        pose_json != nullptr) {
      auto pose = cv::DetectedPose::FromJson(*pose_json);
      if (!pose.ok()) return pose.error();
      return cv::FaceFromPose(*pose).ToJson();
    }
    if (!request.frame) {
      return InvalidArgument("face_detector: no frame and no pose");
    }
    return cv::DetectFace(request.frame->image).ToJson();
  }
};

class FallDetectorService : public Service {
 public:
  std::string name() const override { return "fall_detector"; }
  Duration Cost(const ServiceRequest&) const override {
    return cv::FallDetectCost();
  }
  Result<json::Value> Handle(const ServiceRequest& request) override {
    auto poses = PosesFromPayload(request.payload, "poses");
    if (!poses.ok()) return poses.error();
    return cv::AssessFall(*poses).ToJson();
  }
};

class ImageClassifierService : public ModelBackedService {
 public:
  ImageClassifierService() : ModelBackedService(modelreg::kImageKind) {}
  std::string name() const override { return "image_classifier"; }
  Duration Cost(const ServiceRequest&) const override {
    const auto artifact = Artifact();
    return artifact ? artifact->InferenceCost() : cv::ImageClassifier::Cost();
  }
  Duration BatchCost(const ServiceBatch& batch) const override {
    return AmortizedBatchCost(*this, batch, Duration::Millis(5));
  }
  Result<json::Value> Handle(const ServiceRequest& request) override {
    if (!request.frame) {
      return InvalidArgument("image_classifier: request carries no frame");
    }
    const auto artifact = Artifact();
    if (!artifact || !artifact->image.has_value()) {
      return Internal("image_classifier: no model bound");
    }
    auto prediction = artifact->image->Classify(request.frame->image);
    if (!prediction.ok()) return prediction.error();
    json::Value out = json::Value::MakeObject();
    out["label"] = json::Value(prediction->label);
    out["confidence"] = json::Value(prediction->confidence);
    return out;
  }
};

/// Object tracking (§2.2). Stateless: tracker state rides in the
/// request. Accepts either pre-computed detections ({state, objects})
/// or a frame to detect in ({state, frame_id, classes}).
class ObjectTrackerService : public Service {
 public:
  std::string name() const override { return "object_tracker"; }
  Duration Cost(const ServiceRequest& request) const override {
    Duration cost = cv::TrackerCost();
    if (request.frame) cost += cv::ObjectDetectCost(request.frame->image);
    return cost;
  }
  Result<json::Value> Handle(const ServiceRequest& request) override {
    cv::TrackerState state;
    if (const json::Value* state_json = request.payload.Find("state");
        state_json != nullptr && state_json->is_object()) {
      auto parsed = cv::TrackerState::FromJson(*state_json);
      if (!parsed.ok()) return parsed.error();
      state = std::move(*parsed);
    }

    std::vector<cv::DetectedObject> detections;
    if (const json::Value* objects = request.payload.Find("objects");
        objects != nullptr && objects->is_array()) {
      for (const json::Value& o : objects->AsArray()) {
        cv::DetectedObject det;
        det.class_name = o.GetString("class", "unknown");
        det.x0 = o.GetDouble("x0");
        det.y0 = o.GetDouble("y0");
        det.x1 = o.GetDouble("x1");
        det.y1 = o.GetDouble("y1");
        detections.push_back(std::move(det));
      }
    } else if (request.frame) {
      cv::ObjectDetectorOptions options;
      if (const json::Value* classes = request.payload.Find("classes");
          classes != nullptr && classes->is_array()) {
        for (const json::Value& cls : classes->AsArray()) {
          options.classes.push_back(cv::ObjectClass{
              cls.GetString("name", "unknown"),
              media::Rgb{static_cast<uint8_t>(cls.GetInt("r")),
                         static_cast<uint8_t>(cls.GetInt("g")),
                         static_cast<uint8_t>(cls.GetInt("b"))}});
        }
      }
      detections = cv::DetectObjects(request.frame->image, options);
    } else {
      return InvalidArgument(
          "object_tracker: need 'objects' or a frame to detect in");
    }

    state = cv::UpdateTracks(std::move(state), detections);
    json::Value out = json::Value::MakeObject();
    json::Value::Array tracks;
    for (const cv::Track& track : state.tracks) {
      tracks.push_back(track.ToJson());
    }
    out["tracks"] = json::Value(std::move(tracks));
    out["state"] = state.ToJson();
    return out;
  }
};

/// The TV-side display sink (a native service in Fig. 4's blue boxes):
/// "renders" the frame plus overlay. We model render cost and count
/// frames; the overlay text is echoed back for tests/examples.
class DisplayService : public Service {
 public:
  std::string name() const override { return "display"; }
  Duration Cost(const ServiceRequest&) const override {
    return Duration::Millis(2.5);
  }
  Result<json::Value> Handle(const ServiceRequest& request) override {
    ++frames_shown_;
    json::Value out = json::Value::MakeObject();
    out["displayed"] = json::Value(true);
    out["frames_shown"] = json::Value(frames_shown_);
    if (const json::Value* overlay = request.payload.Find("overlay")) {
      out["overlay"] = *overlay;
    }
    return out;
  }

 private:
  // Monotone render counter — presentation bookkeeping, not data-path
  // state (replicas of a *display* are distinct physical screens).
  int64_t frames_shown_ = 0;
};

}  // namespace

void RegisterBuiltinServices(ServiceCatalog& catalog) {
  (void)catalog.Register("pose_detector", [] {
    return std::make_unique<PoseDetectorService>();
  });
  (void)catalog.Register("activity_classifier", [] {
    return std::make_unique<ActivityClassifierService>();
  });
  (void)catalog.Register("rep_counter", [] {
    return std::make_unique<RepCounterService>();
  });
  (void)catalog.Register("object_detector", [] {
    return std::make_unique<ObjectDetectorService>();
  });
  (void)catalog.Register("face_detector", [] {
    return std::make_unique<FaceDetectorService>();
  });
  (void)catalog.Register("fall_detector", [] {
    return std::make_unique<FallDetectorService>();
  });
  (void)catalog.Register("image_classifier", [] {
    return std::make_unique<ImageClassifierService>();
  });
  (void)catalog.Register("object_tracker", [] {
    return std::make_unique<ObjectTrackerService>();
  });
  (void)catalog.Register("display", [] {
    return std::make_unique<DisplayService>();
  });
}

}  // namespace vp::services
