#include "services/container.hpp"

#include <algorithm>

namespace vp::services {

void ServiceInstance::Invoke(ServiceRequest request,
                             std::function<void(Result<json::Value>)> done) {
  ++stats_.requests;
  if (crashed_) {
    // Connection refused: the caller learns immediately, not via a
    // timeout.
    ++stats_.refused;
    ++stats_.errors;
    if (done) {
      done(Unavailable("replica of '" + name_ + "' on " + device_ +
                       " is down"));
    }
    return;
  }
  Duration cost = impl_->Cost(request);
  if (cost_jitter_ > 0.0) {
    const double factor =
        std::max(0.5, 1.0 + jitter_rng_.NextGaussian(0.0, cost_jitter_));
    cost = cost * factor;
  }
  stats_.busy += cost;
  const uint64_t epoch = epoch_;
  lane_->Run(cost, [this, epoch, request = std::move(request),
                    done = std::move(done)]() mutable {
    if (wedged_) {
      // Hung process: the request was accepted and is now lost. Only a
      // caller-side timeout can recover from this.
      ++stats_.swallowed;
      return;
    }
    if (epoch != epoch_ || crashed_) {
      // The replica crashed after admitting this request; the result
      // died with the process.
      ++stats_.refused;
      ++stats_.errors;
      if (done) {
        done(Unavailable("replica of '" + name_ + "' on " + device_ +
                         " crashed mid-request"));
      }
      return;
    }
    auto result = impl_->Handle(request);
    if (!result.ok()) ++stats_.errors;
    if (done) done(std::move(result));
  });
}

void ServiceInstance::InvokeBatch(
    std::vector<BatchEntry> entries, Duration extra_cost,
    std::function<void(bool delivered)> batch_done) {
  stats_.requests += entries.size();
  ++stats_.batches;
  if (crashed_) {
    stats_.refused += entries.size();
    stats_.errors += entries.size();
    for (BatchEntry& entry : entries) {
      if (entry.done) {
        entry.done(Unavailable("replica of '" + name_ + "' on " + device_ +
                               " is down"));
      }
    }
    if (batch_done) batch_done(true);
    return;
  }
  ServiceBatch batch;
  batch.reserve(entries.size());
  for (const BatchEntry& entry : entries) batch.push_back(&entry.request);
  Duration cost = impl_->BatchCost(batch) + extra_cost;
  if (cost_jitter_ > 0.0) {
    const double factor =
        std::max(0.5, 1.0 + jitter_rng_.NextGaussian(0.0, cost_jitter_));
    cost = cost * factor;
  }
  stats_.busy += cost;
  const uint64_t epoch = epoch_;
  lane_->Run(cost, [this, epoch, entries = std::move(entries),
                    batch_done = std::move(batch_done)]() mutable {
    if (wedged_) {
      stats_.swallowed += entries.size();
      if (batch_done) batch_done(false);
      return;
    }
    if (epoch != epoch_ || crashed_) {
      stats_.refused += entries.size();
      stats_.errors += entries.size();
      for (BatchEntry& entry : entries) {
        if (entry.done) {
          entry.done(Unavailable("replica of '" + name_ + "' on " + device_ +
                                 " crashed mid-batch"));
        }
      }
      if (batch_done) batch_done(true);
      return;
    }
    ServiceBatch batch;
    batch.reserve(entries.size());
    for (const BatchEntry& entry : entries) batch.push_back(&entry.request);
    std::vector<Result<json::Value>> results = impl_->ExecuteBatch(batch);
    for (size_t i = 0; i < entries.size(); ++i) {
      Result<json::Value> result =
          i < results.size()
              ? std::move(results[i])
              : Result<json::Value>(Internal(
                    "batched '" + name_ + "' returned too few results"));
      if (!result.ok()) ++stats_.errors;
      if (entries[i].done) entries[i].done(std::move(result));
    }
    if (batch_done) batch_done(true);
  });
}

void ServiceInstance::Crash(TimePoint now) {
  if (crashed_) return;
  crashed_ = true;
  ++epoch_;
  down_since_ = now;
}

void ServiceInstance::Restart(TimePoint now, Duration startup_cost) {
  if (crashed_) {
    downtime_ += now - down_since_;
    crashed_ = false;
  }
  wedged_ = false;
  suspected_until_ = TimePoint();
  // Cold start occupies the lane; early requests queue behind it.
  if (startup_cost > Duration::Zero()) lane_->Run(startup_cost, nullptr);
}

void ServiceInstance::SetWedged(bool wedged) {
  wedged_ = wedged;
  if (!wedged) suspected_until_ = TimePoint();
}

Result<std::unique_ptr<ServiceInstance>> ContainerRuntime::LaunchImpl(
    const std::string& device, const std::string& service, bool native) {
  sim::Device* dev = cluster_->FindDevice(device);
  if (dev == nullptr) return NotFound("unknown device '" + device + "'");

  auto impl = catalog_->Create(service);
  if (!impl.ok()) return impl.error();

  sim::ExecutionLane* lane = nullptr;
  if (native) {
    native_lanes_.push_back(std::make_unique<sim::ExecutionLane>(
        &cluster_->simulator(), device + "/native:" + service,
        dev->spec().cpu_speed));
    lane = native_lanes_.back().get();
  } else {
    if (!dev->spec().supports_containers) {
      return FailedPrecondition("device '" + device +
                                "' cannot run containers");
    }
    lane = dev->AllocateContainerLane("svc:" + service);
    if (lane == nullptr) {
      return ResourceExhausted("device '" + device +
                               "' is out of container cores");
    }
  }

  // Startup: occupy the new lane for the cold-start duration so early
  // requests queue behind it.
  lane->Run(native ? options_.native_startup : options_.startup, nullptr);

  // Model-backed services get their version resolved per replica, so
  // different replicas of one group can run different versions (the
  // rollout controller's canary mechanism).
  std::shared_ptr<modelreg::ModelHandle> model;
  const std::string kind = (*impl)->ModelKind();
  if (model_resolver_ && !kind.empty()) {
    model = model_resolver_(device, service, kind);
  }

  auto instance = std::make_unique<ServiceInstance>(
      device, std::move(*impl), lane, native, options_.cost_jitter,
      options_.jitter_seed + ++launch_counter_);
  if (model != nullptr) instance->BindModel(std::move(model));
  return instance;
}

Result<std::unique_ptr<ServiceInstance>> ContainerRuntime::Launch(
    const std::string& device, const std::string& service) {
  return LaunchImpl(device, service, /*native=*/false);
}

Result<std::unique_ptr<ServiceInstance>> ContainerRuntime::LaunchNative(
    const std::string& device, const std::string& service) {
  return LaunchImpl(device, service, /*native=*/true);
}

}  // namespace vp::services
