// vp_run — the VideoPipe command-line runner.
//
// Deploys a pipeline configuration file onto the simulated home
// testbed, drives a workload past the camera, and reports metrics —
// the entry point a downstream user reaches for first.
//
//   vp_run --config pipeline.json [options]
//   vp_run --app fitness|gesture|fall [options]
//
// Options:
//   --config PATH      pipeline config (Listing-1 JSON). Module code
//                      must be inline ("code": …) since there is no
//                      include resolver on the command line.
//   --app NAME         use a bundled application instead of --config
//   --workload PATH    JSON workload: [{"motion":"squat","seconds":12,
//                      "period":2.4}, …]  (default: app-appropriate)
//   --policy NAME      colocate | baseline | latency  (default colocate)
//   --fps N            override source fps
//   --duration SEC     virtual seconds to run (default 30)
//   --monitor          print the telemetry monitor report
//   --trace PATH       write a chrome://tracing timeline of the run
//   --seed N           workload/scene seed
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/fall.hpp"
#include "apps/fitness.hpp"
#include "apps/gesture.hpp"
#include "core/monitor.hpp"
#include "core/orchestrator.hpp"
#include "core/trace_export.hpp"
#include "json/parse.hpp"
#include "sim/cluster.hpp"

using namespace vp;

namespace {

struct Options {
  std::string config_path;
  std::string app;
  std::string workload_path;
  std::string policy = "colocate";
  std::string trace_path;
  double fps = 0;
  double duration = 30;
  bool monitor = false;
  uint64_t seed = 7;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--config PATH | --app fitness|gesture|fall) "
               "[--workload PATH] [--policy colocate|baseline|latency] "
               "[--fps N] [--duration SEC] [--monitor] [--seed N]\n",
               argv0);
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--config" && next()) options.config_path = argv[i];
    else if (arg == "--app" && next()) options.app = argv[i];
    else if (arg == "--workload" && next()) options.workload_path = argv[i];
    else if (arg == "--policy" && next()) options.policy = argv[i];
    else if (arg == "--fps" && next()) options.fps = std::atof(argv[i]);
    else if (arg == "--duration" && next()) options.duration = std::atof(argv[i]);
    else if (arg == "--seed" && next()) options.seed = std::strtoull(argv[i], nullptr, 10);
    else if (arg == "--trace" && next()) options.trace_path = argv[i];
    else if (arg == "--monitor") options.monitor = true;
    else return Usage(argv[0]);
  }
  if (options.config_path.empty() == options.app.empty()) {
    return Usage(argv[0]);  // exactly one of --config / --app
  }

  auto cluster = sim::MakeHomeTestbed();
  core::Orchestrator orchestrator(cluster.get());
  apps::IoTHub hub;
  apps::fall::AlertLog alerts;

  // ---- resolve the pipeline spec + deploy args ----------------------
  Result<core::PipelineSpec> spec = NotFound("unset");
  core::Orchestrator::DeployArgs args;
  args.seed = options.seed;
  if (!options.config_path.empty()) {
    auto text = ReadFile(options.config_path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.error().ToString().c_str());
      return 1;
    }
    spec = core::ParsePipelineConfigText(*text, core::MapResolver({}));
    args.workload = media::DefaultWorkoutScript();
  } else if (options.app == "fitness") {
    spec = apps::fitness::Spec();
    args.workload = apps::fitness::Workout();
  } else if (options.app == "gesture") {
    spec = apps::gesture::Spec();
    args = apps::gesture::MakeDeployArgs(hub, &cluster->simulator());
    args.seed = options.seed;
  } else if (options.app == "fall") {
    spec = apps::fall::Spec();
    args = apps::fall::MakeDeployArgs(alerts, &cluster->simulator());
    args.seed = options.seed;
  } else {
    std::fprintf(stderr, "unknown app '%s'\n", options.app.c_str());
    return 1;
  }
  if (!spec.ok()) {
    std::fprintf(stderr, "config: %s\n", spec.error().ToString().c_str());
    return 1;
  }

  if (!options.workload_path.empty()) {
    auto text = ReadFile(options.workload_path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.error().ToString().c_str());
      return 1;
    }
    auto doc = json::Parse(*text);
    if (!doc.ok()) {
      std::fprintf(stderr, "workload: %s\n",
                   doc.error().ToString().c_str());
      return 1;
    }
    auto workload = media::MotionScript::FromJson(*doc);
    if (!workload.ok()) {
      std::fprintf(stderr, "workload: %s\n",
                   workload.error().ToString().c_str());
      return 1;
    }
    args.workload = std::move(*workload);
  }

  if (options.policy == "colocate") {
    args.placement.policy = core::PlacementPolicy::kCoLocate;
  } else if (options.policy == "baseline") {
    args.placement.policy = core::PlacementPolicy::kSingleDevice;
  } else if (options.policy == "latency") {
    args.placement.policy = core::PlacementPolicy::kLatencyAware;
  } else {
    std::fprintf(stderr, "unknown policy '%s'\n", options.policy.c_str());
    return 1;
  }
  if (options.fps > 0) spec->source.fps = options.fps;
  const core::PlacementPolicy chosen_policy = args.placement.policy;

  // ---- deploy + run ----------------------------------------------------
  auto deployment = orchestrator.Deploy(std::move(*spec), std::move(args));
  if (!deployment.ok()) {
    std::fprintf(stderr, "deploy: %s\n",
                 deployment.error().ToString().c_str());
    return 1;
  }
  core::PipelineDeployment& pipeline = **deployment;
  std::printf("pipeline  : %s\n", pipeline.spec().name.c_str());
  std::printf("placement : %s\n", core::PlacementPolicyName(chosen_policy));
  std::printf("plan      : %s\n\n", pipeline.plan().ToString().c_str());

  core::PipelineMonitor monitor(&orchestrator, Duration::Millis(1000));
  if (options.monitor) {
    for (const auto& [service, device] : pipeline.plan().service_device) {
      monitor.WatchService(device, service);
    }
    monitor.Start();
  }

  pipeline.Start();
  orchestrator.RunFor(Duration::Seconds(options.duration));

  const core::PipelineMetrics& metrics = pipeline.metrics();
  std::printf("frames completed : %llu\n",
              static_cast<unsigned long long>(metrics.frames_completed()));
  std::printf("end-to-end fps   : %.2f\n", metrics.EndToEndFps());
  const auto total = metrics.TotalLatency();
  std::printf("latency (ms)     : mean %.1f  p50 %.1f  p95 %.1f  max %.1f\n",
              total.mean_ms, total.p50_ms, total.p95_ms, total.max_ms);
  std::printf("dropped at source: %llu\n",
              static_cast<unsigned long long>(
                  pipeline.camera().frames_dropped()));
  std::printf("\nper-module handler latency:\n");
  for (const core::ModuleSpec& m : pipeline.spec().modules) {
    if (m.type != core::ModuleType::kScript) continue;
    const auto lat = metrics.ModuleLatency(m.name);
    std::printf("  %-28s mean %7.1f ms  p95 %7.1f ms  (%llu events)\n",
                m.name.c_str(), lat.mean_ms, lat.p95_ms,
                static_cast<unsigned long long>(lat.count));
  }

  if (options.monitor) {
    monitor.Stop();
    std::printf("\n%s", monitor.Report().c_str());
  }
  if (!options.trace_path.empty()) {
    Status written = core::WriteChromeTrace(pipeline, options.trace_path);
    if (written.ok()) {
      std::printf("\ntimeline written to %s (open in chrome://tracing)\n",
                  options.trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace: %s\n", written.ToString().c_str());
    }
  }
  if (!hub.log().empty()) {
    std::printf("\nIoT commands: %zu\n", hub.log().size());
  }
  if (!alerts.alerts().empty()) {
    std::printf("\nalerts: %zu\n", alerts.alerts().size());
  }
  return 0;
}
