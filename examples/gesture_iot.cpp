// Gesture-based IoT control (paper §4.2): wave to toggle the doorbell
// camera, clap to toggle the living-room light.
//
//   $ ./gesture_iot
#include <cstdio>

#include "apps/gesture.hpp"
#include "core/orchestrator.hpp"
#include "sim/cluster.hpp"

using namespace vp;

int main() {
  std::printf("VideoPipe gesture control — §4.2\n\n");
  auto cluster = sim::MakeHomeTestbed();
  core::Orchestrator orchestrator(cluster.get());

  apps::IoTHub hub;
  auto spec = apps::gesture::Spec();
  if (!spec.ok()) {
    std::fprintf(stderr, "config: %s\n", spec.error().ToString().c_str());
    return 1;
  }
  auto args = apps::gesture::MakeDeployArgs(hub, &cluster->simulator());
  auto deployment = orchestrator.Deploy(std::move(*spec), std::move(args));
  if (!deployment.ok()) {
    std::fprintf(stderr, "deploy: %s\n",
                 deployment.error().ToString().c_str());
    return 1;
  }
  std::printf("plan: %s\n\n", (*deployment)->plan().ToString().c_str());

  const media::MotionScript session = apps::gesture::GestureSession();
  std::printf("session script:\n");
  double t = 0;
  for (const auto& segment : session.segments()) {
    std::printf("  %5.1f-%5.1fs  %s\n", t, t + segment.duration,
                segment.label.c_str());
    t += segment.duration;
  }

  (*deployment)->Start();
  orchestrator.RunFor(Duration::Seconds(session.total_duration() + 2));

  std::printf("\nIoT command log:\n");
  if (hub.log().empty()) {
    std::printf("  (no commands issued)\n");
  }
  for (const apps::IoTHub::Command& command : hub.log()) {
    std::printf("  t=%6.2fs  %-18s %s\n", command.when.seconds(),
                command.device.c_str(), command.action.c_str());
  }

  std::printf("\nfinal device states:\n");
  for (const char* device : {"living_room_light", "doorbell_camera"}) {
    const auto* state = hub.Find(device);
    std::printf("  %-18s %-3s (%d toggles)\n", device,
                state->on ? "ON" : "off", state->toggles);
  }
  std::printf("\npipeline: %.2f fps, %llu frames\n",
              (*deployment)->metrics().EndToEndFps(),
              static_cast<unsigned long long>(
                  (*deployment)->metrics().frames_completed()));
  return 0;
}
