// Build-your-own pipeline: a front-door monitor assembled from the
// remaining builtin services (image_classifier, face_detector,
// object_detector) on a CUSTOM device cluster — showing everything a
// downstream user needs: devices, links, config, module scripts, extra
// host functions, scene props.
//
//   $ ./custom_pipeline [path/to/pipeline.json]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/orchestrator.hpp"
#include "media/video_source.hpp"
#include "sim/cluster.hpp"

using namespace vp;

namespace {

// A doorbell camera (weak, no containers), a hallway hub (runs the
// services) and a tablet (the notification surface).
std::unique_ptr<sim::Cluster> MakeDoorwayCluster() {
  auto cluster = std::make_unique<sim::Cluster>(/*seed=*/99);
  sim::DeviceSpec camera;
  camera.name = "doorbell";
  camera.cpu_speed = 0.2;
  camera.capabilities = {"camera"};
  (void)cluster->AddDevice(camera);

  sim::DeviceSpec hub;
  hub.name = "hub";
  hub.cpu_speed = 0.8;
  hub.supports_containers = true;
  hub.container_cores = 3;
  (void)cluster->AddDevice(hub);

  sim::DeviceSpec tablet;
  tablet.name = "tablet";
  tablet.cpu_speed = 0.4;
  tablet.capabilities = {"display"};
  (void)cluster->AddDevice(tablet);

  sim::LinkSpec wifi;
  wifi.latency = Duration::Millis(4.0);
  wifi.bandwidth_bps = 40e6;  // far corner of the house
  wifi.jitter = Duration::Millis(1.0);
  cluster->network().set_default_link(wifi);
  return cluster;
}

const char* kDefaultConfig = R"CFG(
// Front-door monitor: classify the scene; when someone is present,
// look for a face and for packages, then notify the tablet.
{
  "name": "doorway_monitor",
  "source": { "module": "camera_module", "fps": 8,
              "width": 320, "height": 240 },
  "modules": [
    { "name": "camera_module", "type": "source",
      "endpoint": "bind#tcp://*:7100",
      "next_module": ["scene_module"] },

    { "name": "scene_module",
      "service": ["image_classifier"],
      "endpoint": "bind#tcp://*:7101",
      "next_module": ["analysis_module", "notify_module"],
      "code": "
        function event_received(msg) {
          var verdict = call_service('image_classifier',
                                     { frame_id: msg.frame_id });
          if (verdict.label == 'person_present') {
            call_module('analysis_module', {
              frame_id: msg.frame_id, seq: msg.seq });
          } else {
            // Nothing to analyze; close the loop at the sink.
            call_module('notify_module', { seq: msg.seq, quiet: true });
          }
        }" },

    { "name": "analysis_module",
      "service": ["face_detector", "object_detector"],
      "endpoint": "bind#tcp://*:7102",
      "next_module": ["notify_module"],
      "code": "
        function event_received(msg) {
          var face = call_service('face_detector',
                                  { frame_id: msg.frame_id });
          var objects = call_service('object_detector', {
            frame_id: msg.frame_id,
            classes: [ { name: 'package', r: 170, g: 110, b: 40 } ]
          });
          var packages = 0;
          for (var i = 0; i < objects.objects.length; i++) {
            if (objects.objects[i]['class'] == 'package') {
              packages = packages + 1;
            }
          }
          call_module('notify_module', {
            seq: msg.seq,
            face: face.found,
            packages: packages
          });
        }" },

    { "name": "notify_module",
      "device": "tablet",
      "endpoint": "bind#tcp://*:7103",
      "signal_source": true,
      "next_module": [],
      "code": "
        var visitors = 0;
        var packages_seen = 0;
        var was_present = false;
        function event_received(msg) {
          if (msg.quiet) { was_present = false; return; }
          if (msg.face != undefined) {
            if (msg.face && !was_present) {
              visitors = visitors + 1;
              notify('visitor at the door');
            }
            was_present = msg.face;
            if (msg.packages > packages_seen) {
              packages_seen = msg.packages;
              notify('package spotted');
            }
          }
        }" }
  ]
}
)CFG";

}  // namespace

int main(int argc, char** argv) {
  std::printf("VideoPipe custom pipeline — front-door monitor\n\n");

  std::string config_text = kDefaultConfig;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    config_text = buffer.str();
  }

  auto cluster = MakeDoorwayCluster();
  core::Orchestrator orchestrator(cluster.get());

  auto spec = core::ParsePipelineConfigText(config_text,
                                            core::MapResolver({}));
  if (!spec.ok()) {
    std::fprintf(stderr, "config: %s\n", spec.error().ToString().c_str());
    return 1;
  }

  // The camera watches the porch: mostly empty, a visitor walks up
  // (idle person on camera), leaves, comes back.
  auto workload = media::MotionScript::Make({
      {"idle", 6.0, {}},          // visitor standing at the door
      {"wave", 3.0, {}},          // waves at the camera
      {"idle", 4.0, {}},
  });
  core::Orchestrator::DeployArgs args;
  args.workload = std::move(*workload);
  args.seed = 31;
  // Porch scene: a delivered package sits by the door.
  args.scene.props.push_back(
      media::Prop{"package", 0.72, 0.78, 0.14, 0.14,
                  media::Rgb{170, 110, 40}});
  // Notification host function for the notify module.
  std::vector<std::pair<double, std::string>> notifications;
  args.extra_host_functions["notify_module"].emplace_back(
      "notify",
      [&notifications, sim = &cluster->simulator()](
          std::vector<script::Value>& fn_args,
          script::Interpreter&) -> Result<script::Value> {
        notifications.emplace_back(
            sim->Now().seconds(),
            fn_args.empty() ? "?" : fn_args[0].ToDisplayString());
        return script::Value(true);
      });

  auto deployment = orchestrator.Deploy(std::move(*spec), std::move(args));
  if (!deployment.ok()) {
    std::fprintf(stderr, "deploy: %s\n",
                 deployment.error().ToString().c_str());
    return 1;
  }
  std::printf("plan: %s\n\n", (*deployment)->plan().ToString().c_str());

  (*deployment)->Start();
  orchestrator.RunFor(Duration::Seconds(14));

  std::printf("notifications on the tablet:\n");
  for (const auto& [when, text] : notifications) {
    std::printf("  t=%5.2fs  %s\n", when, text.c_str());
  }
  core::ModuleRuntime* notify = (*deployment)->FindModule("notify_module");
  std::printf("\nvisitors counted: %s, packages seen: %s\n",
              notify->context().GetGlobal("visitors")
                  .ToDisplayString().c_str(),
              notify->context().GetGlobal("packages_seen")
                  .ToDisplayString().c_str());
  std::printf("pipeline: %.2f fps over %llu frames\n",
              (*deployment)->metrics().EndToEndFps(),
              static_cast<unsigned long long>(
                  (*deployment)->metrics().frames_completed()));
  return notifications.empty() ? 1 : 0;
}
