// Quickstart: deploy the paper's fitness pipeline (Fig. 4) on the
// three-device home testbed and print what happened.
//
//   $ ./quickstart
//
// Walks the whole public API surface: cluster construction, pipeline
// configuration (Listing-1 JSON), deployment with the co-locating
// placement policy, simulation, and metrics readout.
#include <cstdio>

#include "apps/fitness.hpp"
#include "core/orchestrator.hpp"
#include "sim/cluster.hpp"

using namespace vp;

int main() {
  // 1. The home: a 2018 flagship phone, a desktop, a TV — Wi-Fi.
  std::unique_ptr<sim::Cluster> cluster = sim::MakeHomeTestbed();

  // 2. The control plane.
  core::Orchestrator orchestrator(cluster.get());

  // 3. The application: modules in vpscript, wiring in a Listing-1
  //    style JSON config.
  auto spec = apps::fitness::Spec();
  if (!spec.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 spec.error().ToString().c_str());
    return 1;
  }

  // 4. Deploy with VideoPipe's co-locating placement: modules land on
  //    the devices that host the services they call.
  core::Orchestrator::DeployArgs args;
  args.workload = apps::fitness::Workout();  // squats, jacks, lunges
  auto deployment = orchestrator.Deploy(std::move(*spec), std::move(args));
  if (!deployment.ok()) {
    std::fprintf(stderr, "deploy error: %s\n",
                 deployment.error().ToString().c_str());
    return 1;
  }
  core::PipelineDeployment& pipeline = **deployment;

  std::printf("deployment plan: %s\n\n", pipeline.plan().ToString().c_str());

  // 5. Run a 30-second session (virtual time — finishes instantly).
  pipeline.Start();
  orchestrator.RunFor(Duration::Seconds(30));

  // 6. Read the results.
  const core::PipelineMetrics& metrics = pipeline.metrics();
  std::printf("frames completed : %llu\n",
              static_cast<unsigned long long>(metrics.frames_completed()));
  std::printf("end-to-end fps   : %.2f\n", metrics.EndToEndFps());
  std::printf("frames dropped   : %llu (at the source, by design)\n",
              static_cast<unsigned long long>(
                  pipeline.camera().frames_dropped()));

  const auto total = metrics.TotalLatency();
  std::printf("capture→display  : mean %.1f ms  p95 %.1f ms\n", total.mean_ms,
              total.p95_ms);
  for (const char* module :
       {"pose_detection_module", "activity_detector_module",
        "rep_counter_module", "display_module"}) {
    const auto lat = metrics.ModuleLatency(module);
    std::printf("  %-26s mean %6.1f ms  p95 %6.1f ms\n", module, lat.mean_ms,
                lat.p95_ms);
  }

  // What did the user see on the TV? Ask the display module's context.
  core::ModuleRuntime* display = pipeline.FindModule("display_module");
  const script::Value reps = display->context().GetGlobal("reps");
  const script::Value activity = display->context().GetGlobal("activity");
  std::printf("\nTV overlay at the end: activity=%s reps=%s\n",
              activity.ToDisplayString().c_str(),
              reps.ToDisplayString().c_str());
  return 0;
}
