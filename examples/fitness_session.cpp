// Fitness application (paper §4.1, Figs. 3–4) — a full workout session
// on the three-device home, run under BOTH placements so you can see
// the co-location win, with a terminal rendering of what the TV shows.
//
//   $ ./fitness_session
#include <algorithm>
#include <cstdio>
#include <string>

#include "apps/fitness.hpp"
#include "core/orchestrator.hpp"
#include "media/codec.hpp"
#include "sim/cluster.hpp"

using namespace vp;

namespace {

/// ASCII rendering of a frame (what Fig. 3 shows on the 4K TV,
/// downgraded to a terminal).
void PrintFrameAscii(const media::Image& image) {
  const char* ramp = " .:-=+*#%@";
  const int cols = 64;
  const int rows = 20;
  for (int row = 0; row < rows; ++row) {
    std::string line;
    for (int col = 0; col < cols; ++col) {
      const int x = col * image.width() / cols;
      const int y = row * image.height() / rows;
      const media::Rgb c = image.At(x, y);
      const int luma = (c.r * 3 + c.g * 6 + c.b) / 10;
      line += ramp[std::min(9, luma * 10 / 256)];
    }
    std::printf("  |%s|\n", line.c_str());
  }
}

void RunSession(core::PlacementPolicy policy) {
  std::printf("\n################ placement: %s ################\n",
              core::PlacementPolicyName(policy));
  auto cluster = sim::MakeHomeTestbed();
  core::Orchestrator orchestrator(cluster.get());
  auto spec = apps::fitness::Spec();
  if (!spec.ok()) {
    std::fprintf(stderr, "config: %s\n", spec.error().ToString().c_str());
    return;
  }
  core::Orchestrator::DeployArgs args;
  args.workload = apps::fitness::Workout();
  args.placement.policy = policy;
  auto deployment = orchestrator.Deploy(std::move(*spec), std::move(args));
  if (!deployment.ok()) {
    std::fprintf(stderr, "deploy: %s\n",
                 deployment.error().ToString().c_str());
    return;
  }
  core::PipelineDeployment& pipeline = **deployment;
  std::printf("%s\n\n", pipeline.plan().ToString().c_str());

  pipeline.Start();
  // Narrate the session second by second (virtual time).
  const media::MotionScript workout = apps::fitness::Workout();
  core::ModuleRuntime* display = pipeline.FindModule("display_module");
  std::printf("%6s %-14s %-14s %6s %8s\n", "t(s)", "truth", "detected",
              "reps", "fps");
  for (int second = 1; second <= 41; ++second) {
    orchestrator.RunFor(Duration::Seconds(1));
    if (second % 4 != 0) continue;
    const script::Value activity = display->context().GetGlobal("activity");
    const script::Value reps = display->context().GetGlobal("reps");
    std::printf("%6d %-14s %-14s %6s %8.2f\n", second,
                workout.LabelAt(second - 0.5).c_str(),
                activity.ToDisplayString().c_str(),
                reps.ToDisplayString().c_str(),
                pipeline.metrics().EndToEndFps());
  }

  const core::PipelineMetrics& metrics = pipeline.metrics();
  std::printf("\nsession summary:\n");
  std::printf("  frames completed  %llu (dropped at source: %llu)\n",
              static_cast<unsigned long long>(metrics.frames_completed()),
              static_cast<unsigned long long>(
                  pipeline.camera().frames_dropped()));
  std::printf("  end-to-end        %.2f fps, %.1f ms mean latency\n",
              metrics.EndToEndFps(), metrics.TotalLatency().mean_ms);
  std::printf("  ground-truth reps %d\n",
              workout.RepsUpTo(workout.total_duration()));

  // Render one mid-squat frame the way the TV would show it.
  if (policy == core::PlacementPolicy::kCoLocate) {
    std::printf("\nwhat the TV shows (one frame, mid-squat, ASCII-ified):\n");
    media::SceneOptions scene;
    scene.width = 320;
    scene.height = 240;
    media::SyntheticVideoSource source(apps::fitness::Workout(), 20.0,
                                       scene, 7);
    PrintFrameAscii(source.CaptureFrame(160).image);  // t = 8 s, squat
  }
}

}  // namespace

int main() {
  std::printf("VideoPipe fitness application — 41 s workout session\n");
  std::printf("(squats -> jumping jacks -> lunges, phone camera -> TV)\n");
  RunSession(core::PlacementPolicy::kCoLocate);
  RunSession(core::PlacementPolicy::kSingleDevice);
  std::printf("\nCompare the two summaries: co-location is what makes the "
              "pipeline hit its ~10-11 FPS ceiling.\n");
  return 0;
}
