// Fall-detection application (paper §4.3): an elderly-care monitor
// that pages a caregiver when the person on camera goes down.
//
//   $ ./fall_alert
#include <cstdio>

#include "apps/fall.hpp"
#include "core/orchestrator.hpp"
#include "sim/cluster.hpp"

using namespace vp;

int main() {
  std::printf("VideoPipe fall detection — §4.3\n\n");
  auto cluster = sim::MakeHomeTestbed();
  core::Orchestrator orchestrator(cluster.get());

  apps::fall::AlertLog alerts;
  auto spec = apps::fall::Spec();
  if (!spec.ok()) {
    std::fprintf(stderr, "config: %s\n", spec.error().ToString().c_str());
    return 1;
  }
  auto args = apps::fall::MakeDeployArgs(alerts, &cluster->simulator());
  auto deployment = orchestrator.Deploy(std::move(*spec), std::move(args));
  if (!deployment.ok()) {
    std::fprintf(stderr, "deploy: %s\n",
                 deployment.error().ToString().c_str());
    return 1;
  }
  std::printf("plan: %s\n\n", (*deployment)->plan().ToString().c_str());

  const media::MotionScript session = apps::fall::FallSession();
  std::printf("session: idle → squats → idle → FALL (starting ~%.1f s)\n\n",
              4.0 + 6.0 + 2.0 + 6.0 * 0.4);

  (*deployment)->Start();
  core::ModuleRuntime* monitor =
      (*deployment)->FindModule("fall_monitor_module");
  std::printf("%6s %-10s %10s\n", "t(s)", "truth", "monitor");
  for (int second = 2; second <= 20; second += 2) {
    orchestrator.RunFor(Duration::Seconds(2));
    const script::Value fallen = monitor->context().GetGlobal("was_fallen");
    std::printf("%6d %-10s %10s\n", second,
                session.LabelAt(second - 0.5).c_str(),
                fallen.Truthy() ? "FALLEN" : "ok");
  }

  std::printf("\nalerts raised: %zu\n", alerts.alerts().size());
  for (const apps::fall::Alert& alert : alerts.alerts()) {
    std::printf("  t=%6.2fs  torso %.0f° from vertical, %0.f%% of window "
                "frames down\n",
                alert.when.seconds(), alert.torso_angle_deg,
                alert.fallen_fraction * 100);
  }
  return alerts.alerts().size() == 1 ? 0 : 1;
}
